package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// wireschema statically extracts the codec's wire layout — frame kind
// constants, per-message field tag numbers and wire types, and the
// column order of columnar (loop-per-column) payloads — and locks it in
// codec.lock.json. The extraction is self-configuring: any function
// that forwards its own integer parameter as the tag argument of
// appendTag (directly or through another appender) is a field-appender,
// and its wire type is the constant wire-type argument at the bottom of
// that chain. Calls to appenders with constant tag arguments are the
// fields; the constant's name is the field name.
//
// The analyzer itself reports intra-package problems (tag reuse inside
// one message, non-constant tag arguments, frame-kind value collisions)
// with normal suppression support; the diff against the committed
// lockfile is appended by Run (see schemaLockFindings), because a stale
// lockfile is a repo-level contract violation, not a line of code.

// SchemaFormat versions the lockfile itself, not the wire format it
// describes.
const SchemaFormat = 1

// LockfileName is the canonical lockfile, at the module root.
const LockfileName = "codec.lock.json"

// SchemaField is one tagged field of a message: the tag constant's
// name, its number, and the wire type ("varint", "fixed8", "bytes").
type SchemaField struct {
	Name string `json:"name"`
	Num  int64  `json:"num"`
	Wire string `json:"wire"`
}

// SchemaColumn is one column of a columnar payload, in emit order.
type SchemaColumn struct {
	Name string `json:"name"`
	Wire string `json:"wire"`
}

// Schema is the extracted wire layout. Maps marshal with sorted keys,
// so Marshal is canonical.
type Schema struct {
	Format   int                       `json:"format"`
	Kinds    map[string]int64          `json:"kinds,omitempty"`
	Versions map[string]int64          `json:"versions,omitempty"`
	Messages map[string][]SchemaField  `json:"messages,omitempty"`
	Columns  map[string][]SchemaColumn `json:"columns,omitempty"`
}

// Marshal renders the canonical lockfile bytes.
func (s *Schema) Marshal() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Schema contains only maps, slices, strings, and ints.
		panic("lint: schema marshal: " + err.Error())
	}
	return append(b, '\n')
}

// ParseLockfile parses and validates lockfile bytes. It never panics,
// whatever the input (FuzzParseLockfile).
func ParseLockfile(data []byte) (*Schema, error) {
	var s Schema
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("lockfile: %v", err)
	}
	if s.Format != SchemaFormat {
		return nil, fmt.Errorf("lockfile: format %d (this arcslint understands %d)", s.Format, SchemaFormat)
	}
	for msg, fields := range s.Messages {
		if msg == "" {
			return nil, fmt.Errorf("lockfile: empty message name")
		}
		nums := make(map[int64]string, len(fields))
		for _, f := range fields {
			if f.Name == "" || f.Num < 0 || !validWire(f.Wire) {
				return nil, fmt.Errorf("lockfile: message %s: bad field %+v", msg, f)
			}
			if prev, dup := nums[f.Num]; dup {
				return nil, fmt.Errorf("lockfile: message %s: tag %d claimed by %s and %s", msg, f.Num, prev, f.Name)
			}
			nums[f.Num] = f.Name
		}
	}
	for fn, cols := range s.Columns {
		if fn == "" {
			return nil, fmt.Errorf("lockfile: empty columnar function name")
		}
		for i, c := range cols {
			if c.Name == "" || !validWire(c.Wire) {
				return nil, fmt.Errorf("lockfile: columnar %s: bad column %d %+v", fn, i, c)
			}
		}
	}
	for name, v := range s.Kinds {
		if name == "" || v < 0 {
			return nil, fmt.Errorf("lockfile: bad kind %q = %d", name, v)
		}
	}
	for name, v := range s.Versions {
		if name == "" || v < 0 {
			return nil, fmt.Errorf("lockfile: bad version const %q = %d", name, v)
		}
	}
	return &s, nil
}

func validWire(w string) bool {
	switch w {
	case "varint", "fixed8", "bytes", "uvarint":
		return true
	}
	return false
}

// schemaProblem is an intra-package extraction finding.
type schemaProblem struct {
	pos token.Pos
	msg string
}

func runWireSchema(p *pass) {
	_, problems := ExtractSchema(p.pkg)
	for _, pr := range problems {
		p.report(pr.pos, CheckWireSchema, "%s", pr.msg)
	}
}

// ExtractSchema derives the wire schema of one loaded package, plus any
// intra-package problems (tag reuse, non-constant tags, kind-value
// collisions).
func ExtractSchema(pkg *Package) (*Schema, []schemaProblem) {
	s := &Schema{
		Format:   SchemaFormat,
		Kinds:    map[string]int64{},
		Versions: map[string]int64{},
		Messages: map[string][]SchemaField{},
		Columns:  map[string][]SchemaColumn{},
	}
	var problems []schemaProblem

	// Frame kinds (Kind*) and format-version constants (*Version).
	kindByValue := map[int64]string{}
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := pkg.Info.Defs[name].(*types.Const)
					if !ok {
						continue
					}
					v, exact := constant.Int64Val(constant.ToInt(c.Val()))
					if !exact {
						continue
					}
					switch {
					case strings.HasPrefix(name.Name, "Kind") && len(name.Name) > len("Kind"):
						if prev, dup := kindByValue[v]; dup {
							problems = append(problems, schemaProblem{name.Pos(),
								fmt.Sprintf("frame kind %s reuses value 0x%02x (already %s); kind values are append-only", name.Name, v, prev)})
							continue
						}
						kindByValue[v] = name.Name
						s.Kinds[name.Name] = v
					case strings.HasSuffix(name.Name, "Version") && name.Name != "Version":
						s.Versions[name.Name] = v
					}
				}
			}
		}
	}

	appenders, tagFn := findAppenders(pkg)

	// Messages: any non-appender function that calls an appender with a
	// constant tag argument.
	forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
		fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
		if fd.Body == nil || fn == nil || fn == tagFn {
			return
		}
		if _, isAppender := appenders[fn]; isAppender {
			return
		}
		name := funcDisplayName(fd)
		var fields []SchemaField
		seen := map[int64]string{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pkg, call)
			ap, ok := appenders[callee]
			if !ok || len(call.Args) <= ap.numIdx {
				return true
			}
			numArg := call.Args[ap.numIdx]
			v, isConst := constIntValue(pkg, numArg)
			if !isConst {
				problems = append(problems, schemaProblem{numArg.Pos(),
					fmt.Sprintf("message %s: tag argument to %s is not a compile-time constant; the schema cannot be locked", name, callee.Name())})
				return true
			}
			fname := tagConstName(numArg, v)
			if prev, dup := seen[v]; dup {
				problems = append(problems, schemaProblem{numArg.Pos(),
					fmt.Sprintf("message %s reuses tag %d (%s and %s); tag numbers are append-only and never recycled", name, v, prev, fname)})
				return true
			}
			seen[v] = fname
			fields = append(fields, SchemaField{Name: fname, Num: v, Wire: ap.wire})
			return true
		})
		if len(fields) > 0 {
			sort.Slice(fields, func(i, j int) bool { return fields[i].Num < fields[j].Num })
			s.Messages[name] = fields
		}
	})

	// A *Version constant that is really a tag number (entVersion,
	// ansVersion) is already locked as a message field; keep only true
	// format-version constants under "versions".
	for _, fields := range s.Messages {
		for _, f := range fields {
			delete(s.Versions, f.Name)
		}
	}

	// Columnar payloads: functions with >= 2 outermost loops that each
	// emit one scalar column via an append-style helper ([]byte, uint64)
	// or ([]byte, float64).
	forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
		if fd.Body == nil {
			return
		}
		var cols []SchemaColumn
		for _, loop := range outermostLoops(fd.Body) {
			if col, ok := columnOfLoop(pkg, loop); ok {
				cols = append(cols, col)
			}
		}
		if len(cols) >= 2 {
			s.Columns[funcDisplayName(fd)] = cols
		}
	})

	sort.Slice(problems, func(i, j int) bool { return problems[i].pos < problems[j].pos })
	return s, problems
}

// appenderInfo describes a discovered field-appender: which parameter
// is the tag number, and the wire type it bottoms out in.
type appenderInfo struct {
	numIdx int
	wire   string
}

// findAppenders discovers the field-appender helpers by fixpoint: a
// function that passes its own parameter as the tag argument of
// appendTag (wire type = the constant wire-type argument) or of an
// already-known appender is itself an appender.
func findAppenders(pkg *Package) (map[*types.Func]appenderInfo, *types.Func) {
	var tagFn *types.Func
	if obj, ok := pkg.Types.Scope().Lookup("appendTag").(*types.Func); ok {
		tagFn = obj
	}
	appenders := map[*types.Func]appenderInfo{}
	if tagFn == nil {
		return appenders, nil
	}
	for changed := true; changed; {
		changed = false
		forEachFuncDecl(pkg, func(fd *ast.FuncDecl) {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fd.Body == nil || fn == nil || fn == tagFn {
				return
			}
			if _, done := appenders[fn]; done {
				return
			}
			params := paramObjects(pkg, fd)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pkg, call)
				var numArg, wtArg ast.Expr
				var wire string
				switch {
				case callee == tagFn && len(call.Args) >= 3:
					numArg, wtArg = call.Args[1], call.Args[2]
				default:
					ap, ok := appenders[callee]
					if !ok || len(call.Args) <= ap.numIdx {
						return true
					}
					numArg, wire = call.Args[ap.numIdx], ap.wire
				}
				pi := paramIndex(pkg, params, numArg)
				if pi < 0 {
					return true
				}
				if wtArg != nil {
					wv, ok := constIntValue(pkg, wtArg)
					if !ok {
						return true
					}
					wire = wireName(wv)
				}
				appenders[fn] = appenderInfo{numIdx: pi, wire: wire}
				changed = true
				return false
			})
		})
	}
	return appenders, tagFn
}

func wireName(wt int64) string {
	switch wt {
	case 0:
		return "varint"
	case 1:
		return "fixed8"
	case 2:
		return "bytes"
	}
	return fmt.Sprintf("wt%d", wt)
}

// columnOfLoop classifies one outermost loop as a column emit if it
// calls a package-level append-style scalar helper; the column is named
// after the longest selector path in the helper's value argument.
func columnOfLoop(pkg *Package, loop ast.Stmt) (SchemaColumn, bool) {
	var best *ast.CallExpr
	var bestWire string
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		wire, ok := scalarAppendWire(pkg, call)
		if !ok {
			return true
		}
		if best == nil || call.Pos() < best.Pos() {
			best, bestWire = call, wire
		}
		return true
	})
	if best == nil {
		return SchemaColumn{}, false
	}
	name := longestSelectorPath(best.Args[1])
	if name == "" {
		name = exprString(loopRangeExpr(loop))
	}
	if name == "" {
		name = "loop"
	}
	return SchemaColumn{Name: name, Wire: bestWire}, true
}

// scalarAppendWire reports whether call invokes a package-level helper
// of shape func([]byte, uint64) []byte or func([]byte, float64) []byte,
// and the wire type of the emitted column.
func scalarAppendWire(pkg *Package, call *ast.CallExpr) (string, bool) {
	callee := calleeFunc(pkg, call)
	if callee == nil || len(call.Args) != 2 {
		return "", false
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 2 || sig.Results().Len() != 1 {
		return "", false
	}
	if !isByteSlice(sig.Params().At(0).Type()) || !isByteSlice(sig.Results().At(0).Type()) {
		return "", false
	}
	b, ok := sig.Params().At(1).Type().Underlying().(*types.Basic)
	if !ok {
		return "", false
	}
	switch b.Kind() {
	case types.Uint64:
		return "uvarint", true
	case types.Float64:
		return "fixed8", true
	}
	return "", false
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// longestSelectorPath finds the deepest field-selector chain under e
// ("entries[i].Key.App" -> "Key.App"), skipping index expressions and
// the root identifier. Returns "" when e contains no selector.
func longestSelectorPath(e ast.Expr) string {
	best := ""
	bestDepth := 0
	var bestPos token.Pos
	ast.Inspect(e, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		path, depth := selectorPath(sel)
		if depth > bestDepth || (depth == bestDepth && sel.Pos() < bestPos) {
			best, bestDepth, bestPos = path, depth, sel.Pos()
		}
		return true
	})
	return best
}

func selectorPath(sel *ast.SelectorExpr) (string, int) {
	parts := []string{sel.Sel.Name}
	x := sel.X
	for {
		switch v := x.(type) {
		case *ast.SelectorExpr:
			parts = append(parts, v.Sel.Name)
			x = v.X
		case *ast.IndexExpr:
			x = v.X
		case *ast.ParenExpr:
			x = v.X
		case *ast.StarExpr:
			x = v.X
		default:
			for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
				parts[i], parts[j] = parts[j], parts[i]
			}
			return strings.Join(parts, "."), len(parts)
		}
	}
}

func loopRangeExpr(loop ast.Stmt) ast.Expr {
	if r, ok := loop.(*ast.RangeStmt); ok {
		return r.X
	}
	return nil
}

func exprString(e ast.Expr) string {
	switch v := e.(type) {
	case nil:
		return ""
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		p, _ := selectorPath(v)
		return p
	case *ast.IndexExpr:
		return exprString(v.X)
	case *ast.ParenExpr:
		return exprString(v.X)
	case *ast.StarExpr:
		return exprString(v.X)
	}
	return ""
}

// outermostLoops collects top-level for/range statements in source
// order, not descending into nested loops.
func outermostLoops(body *ast.BlockStmt) []ast.Stmt {
	var loops []ast.Stmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			loops = append(loops, n.(ast.Stmt))
			return false
		}
		return true
	})
	sort.Slice(loops, func(i, j int) bool { return loops[i].Pos() < loops[j].Pos() })
	return loops
}

// forEachFuncDecl visits every function declaration in deterministic
// (file, then source) order.
func forEachFuncDecl(pkg *Package, fn func(*ast.FuncDecl)) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				fn(fd)
			}
		}
	}
}

// funcDisplayName is "Recv.Name" for methods, "Name" for functions.
func funcDisplayName(fd *ast.FuncDecl) string {
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		t := fd.Recv.List[0].Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		if id, ok := t.(*ast.Ident); ok {
			return id.Name + "." + fd.Name.Name
		}
	}
	return fd.Name.Name
}

// calleeFunc resolves a call to a same-package declared function, or
// nil (builtin, method value, closure, other package...).
func calleeFunc(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	if !ok || fn.Pkg() != pkg.Types {
		return nil
	}
	return fn
}

func paramObjects(pkg *Package, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return out
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if obj := pkg.Info.Defs[name]; obj != nil {
				out = append(out, obj)
			}
		}
	}
	return out
}

func paramIndex(pkg *Package, params []types.Object, e ast.Expr) int {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return -1
	}
	obj := pkg.Info.Uses[id]
	if obj == nil {
		return -1
	}
	for i, p := range params {
		if p == obj {
			return i
		}
	}
	return -1
}

// constIntValue evaluates e as a compile-time integer constant.
func constIntValue(pkg *Package, e ast.Expr) (int64, bool) {
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(tv.Value))
}

// tagConstName names a field after the constant identifier at the call
// site; a bare literal gets a synthetic "#<num>" name.
func tagConstName(e ast.Expr, v int64) string {
	switch n := ast.Unparen(e).(type) {
	case *ast.Ident:
		return n.Name
	case *ast.SelectorExpr:
		return n.Sel.Name
	}
	return fmt.Sprintf("#%d", v)
}

// CompareSchemas diffs the committed (old) schema against the extracted
// (new) one. Breaking changes violate the append-only wire contract;
// additions are compatible but require refreshing the lockfile with
// `arcslint -update-schema`.
func CompareSchemas(old, new *Schema) (breaking, additions []string) {
	oldKindByValue := map[int64]string{}
	for name, v := range old.Kinds {
		oldKindByValue[v] = name
	}
	for _, name := range sortedKeys(old.Kinds) {
		ov := old.Kinds[name]
		nv, ok := new.Kinds[name]
		switch {
		case !ok:
			breaking = append(breaking, fmt.Sprintf("frame kind %s (0x%02x) removed; peers still send it", name, ov))
		case nv != ov:
			breaking = append(breaking, fmt.Sprintf("frame kind %s renumbered 0x%02x -> 0x%02x", name, ov, nv))
		}
	}
	for _, name := range sortedKeys(new.Kinds) {
		nv := new.Kinds[name]
		if _, ok := old.Kinds[name]; ok {
			continue
		}
		if prev, taken := oldKindByValue[nv]; taken {
			breaking = append(breaking, fmt.Sprintf("new frame kind %s reuses retired value 0x%02x (was %s)", name, nv, prev))
		} else {
			additions = append(additions, fmt.Sprintf("new frame kind %s = 0x%02x", name, nv))
		}
	}

	for _, name := range sortedKeys(old.Versions) {
		ov := old.Versions[name]
		nv, ok := new.Versions[name]
		switch {
		case !ok:
			breaking = append(breaking, fmt.Sprintf("format version constant %s removed", name))
		case nv < ov:
			breaking = append(breaking, fmt.Sprintf("format version constant %s decreased %d -> %d", name, ov, nv))
		case nv > ov:
			additions = append(additions, fmt.Sprintf("format version constant %s bumped %d -> %d", name, ov, nv))
		}
	}
	for _, name := range sortedKeys(new.Versions) {
		if _, ok := old.Versions[name]; !ok {
			additions = append(additions, fmt.Sprintf("new format version constant %s = %d", name, new.Versions[name]))
		}
	}

	for _, msg := range sortedKeys(old.Messages) {
		of := old.Messages[msg]
		nf, ok := new.Messages[msg]
		if !ok {
			breaking = append(breaking, fmt.Sprintf("message %s removed from the codec", msg))
			continue
		}
		newByNum := map[int64]SchemaField{}
		for _, f := range nf {
			newByNum[f.Num] = f
		}
		oldByNum := map[int64]SchemaField{}
		for _, f := range of {
			oldByNum[f.Num] = f
			n, ok := newByNum[f.Num]
			switch {
			case !ok:
				breaking = append(breaking, fmt.Sprintf("message %s: tag %d (%s, %s) removed; tags are never recycled", msg, f.Num, f.Name, f.Wire))
			case n.Wire != f.Wire:
				breaking = append(breaking, fmt.Sprintf("message %s: tag %d (%s) wire type changed %s -> %s", msg, f.Num, f.Name, f.Wire, n.Wire))
			case n.Name != f.Name:
				additions = append(additions, fmt.Sprintf("message %s: tag %d renamed %s -> %s", msg, f.Num, f.Name, n.Name))
			}
		}
		for _, f := range nf {
			if _, ok := oldByNum[f.Num]; !ok {
				additions = append(additions, fmt.Sprintf("message %s: new tag %d (%s, %s)", msg, f.Num, f.Name, f.Wire))
			}
		}
	}
	for _, msg := range sortedKeys(new.Messages) {
		if _, ok := old.Messages[msg]; !ok {
			additions = append(additions, fmt.Sprintf("new message %s (%d fields)", msg, len(new.Messages[msg])))
		}
	}

	for _, fn := range sortedKeys(old.Columns) {
		oc := old.Columns[fn]
		nc, ok := new.Columns[fn]
		if !ok {
			breaking = append(breaking, fmt.Sprintf("columnar layout %s removed", fn))
			continue
		}
		n := len(oc)
		if len(nc) < n {
			n = len(nc)
		}
		for i := 0; i < n; i++ {
			if oc[i] != nc[i] {
				breaking = append(breaking, fmt.Sprintf("columnar %s: column %d changed %s(%s) -> %s(%s); column order is frozen, append only",
					fn, i, oc[i].Name, oc[i].Wire, nc[i].Name, nc[i].Wire))
			}
		}
		if len(nc) < len(oc) {
			for _, c := range oc[len(nc):] {
				breaking = append(breaking, fmt.Sprintf("columnar %s: trailing column %s(%s) removed", fn, c.Name, c.Wire))
			}
		}
		for _, c := range nc[n:] {
			additions = append(additions, fmt.Sprintf("columnar %s: column %s(%s) appended (remember the version bump)", fn, c.Name, c.Wire))
		}
	}
	for _, fn := range sortedKeys(new.Columns) {
		if _, ok := old.Columns[fn]; !ok {
			additions = append(additions, fmt.Sprintf("new columnar layout %s (%d columns)", fn, len(new.Columns[fn])))
		}
	}
	return breaking, additions
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// codecImportPath is the module-relative package whose schema the
// lockfile pins.
const codecImportPath = "internal/codec"

func lockfilePath(root string) string { return filepath.Join(root, LockfileName) }

// schemaLockFindings diffs pkg's extracted schema against the committed
// lockfile. Every divergence is a finding: breaking changes must be
// reverted, additions cleared with -update-schema.
func schemaLockFindings(root string, pkg *Package) []Finding {
	sch, _ := ExtractSchema(pkg) // intra problems already reported by the analyzer
	lockPos := token.Position{Filename: LockfileName, Line: 1, Column: 1}
	data, err := os.ReadFile(lockfilePath(root))
	if err != nil {
		return []Finding{{Pos: lockPos, Check: CheckWireSchema,
			Message: fmt.Sprintf("missing wire-schema lockfile (%v); run `arcslint -update-schema` and commit it", err)}}
	}
	old, err := ParseLockfile(data)
	if err != nil {
		return []Finding{{Pos: lockPos, Check: CheckWireSchema,
			Message: fmt.Sprintf("unreadable wire-schema lockfile: %v", err)}}
	}
	breaking, additions := CompareSchemas(old, sch)
	var out []Finding
	for _, b := range breaking {
		out = append(out, Finding{Pos: lockPos, Check: CheckWireSchema,
			Message: "breaking wire change: " + b})
	}
	for _, a := range additions {
		out = append(out, Finding{Pos: lockPos, Check: CheckWireSchema,
			Message: "wire schema addition not in lockfile: " + a + "; run `arcslint -update-schema`"})
	}
	return out
}

// SchemaGate runs the full wire-schema contract for the module at root:
// intra-package extraction findings (with suppressions applied) plus
// the lockfile diff. This is what `arcslint -schema-only` and the
// dedicated CI step run.
func SchemaGate(root string) ([]Finding, error) {
	pkg, err := loadCodec(root)
	if err != nil {
		return nil, err
	}
	out := Analyze(pkg, []string{CheckWireSchema})
	out = append(out, schemaLockFindings(root, pkg)...)
	sortFindings(out)
	return out, nil
}

// UpdateSchemaLock re-extracts the schema and rewrites the lockfile.
// Breaking changes are refused unless force is set (a deliberate,
// versioned format migration); the returned breaking list is non-empty
// exactly when the update was refused.
func UpdateSchemaLock(root string, force bool) (breaking, additions []string, err error) {
	pkg, err := loadCodec(root)
	if err != nil {
		return nil, nil, err
	}
	if fs := Analyze(pkg, []string{CheckWireSchema}); len(fs) > 0 {
		msgs := make([]string, len(fs))
		for i, f := range fs {
			msgs[i] = f.String()
		}
		return nil, nil, fmt.Errorf("schema has intra-package problems; fix before locking:\n%s", strings.Join(msgs, "\n"))
	}
	sch, _ := ExtractSchema(pkg)
	if data, rerr := os.ReadFile(lockfilePath(root)); rerr == nil {
		if old, perr := ParseLockfile(data); perr == nil {
			breaking, additions = CompareSchemas(old, sch)
			if len(breaking) > 0 && !force {
				return breaking, additions, nil
			}
		}
	}
	if werr := os.WriteFile(lockfilePath(root), sch.Marshal(), 0o644); werr != nil {
		return nil, nil, werr
	}
	return nil, additions, nil
}

func loadCodec(root string) (*Package, error) {
	ld, err := newLoader(root)
	if err != nil {
		return nil, err
	}
	paths, err := ld.resolve([]string{"./" + codecImportPath})
	if err != nil {
		return nil, err
	}
	if len(paths) != 1 {
		return nil, fmt.Errorf("lint: expected one codec package, got %v", paths)
	}
	return ld.load(paths[0])
}
