package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder is an interprocedural, per-package lock analysis. Each
// function body is walked abstractly, tracking the ordered set of held
// mutexes (a lock class is the types.Object of the mutex field or
// variable — all instances of Store.walMu are one class) and the set of
// deferred unlocks. The walk reports:
//
//   - double acquisition: Lock/RLock of a class already held on the
//     same path (sync mutexes are not reentrant; a second RLock can
//     deadlock against a writer between the two);
//   - missed unlock: a return (or fall-off-the-end) path on which a
//     held mutex has no pending unlock, explicit or deferred — the
//     classic missing `defer` on an error branch;
//
// and records (a) acquisition-order edges held -> acquired and (b) every
// same-package call site with the locks held at it. A fixpoint then
// propagates "may acquire" sets over the call graph, adding
// interprocedural edges and flagging calls that can re-acquire a lock
// the caller already holds. Cycles in the resulting order graph are
// potential deadlocks and are reported on every participating edge.
//
// `//arcslint:locked <mu>` on a function declares that its caller holds
// <mu>: the walk starts with it held (and exempt from missed-unlock),
// so the annotation both silences false positives and catches the
// function re-locking what it was promised.
//
// Branches merge by intersection (a lock released on one arm counts as
// released), closures and `go` statements are opaque, and lock identity
// is by field/variable object, so two distinct instances of one shard
// class alias. Those are the model's limits — see DESIGN.md §14.

func runLockOrder(p *pass) {
	a := &loAnalysis{
		p:      p,
		labels: map[types.Object]string{},
		funcs:  map[*types.Func]*loFunc{},
		order:  map[loEdge]token.Pos{},
		byName: map[string][]types.Object{},
	}
	a.collectMutexNames()
	forEachFuncDecl(p.pkg, func(fd *ast.FuncDecl) { a.walkFunc(fd) })
	a.propagate()
	a.linkCalls()
	a.reportCycles()
}

type loEdge struct{ from, to types.Object }

type loAnalysis struct {
	p      *pass
	labels map[types.Object]string
	funcs  map[*types.Func]*loFunc
	fnOrd  []*loFunc // deterministic iteration order
	order  map[loEdge]token.Pos
	byName map[string][]types.Object // mutex name -> candidate objects
}

type loFunc struct {
	fn    *types.Func
	may   map[types.Object]token.Pos // locks this function may acquire, transitively
	calls []loCall
}

type loCall struct {
	callee *types.Func
	held   []loAcq
	pos    token.Pos
}

type loAcq struct {
	obj  types.Object
	read bool
	pos  token.Pos
}

type loState struct {
	held     []loAcq
	deferred map[types.Object]bool
}

func (st *loState) clone() *loState {
	c := &loState{
		held:     append([]loAcq(nil), st.held...),
		deferred: make(map[types.Object]bool, len(st.deferred)),
	}
	for k, v := range st.deferred {
		c.deferred[k] = v
	}
	return c
}

// mergeStates intersects held sets and deferred sets: a lock released
// on any arm is treated as released (optimistic, minimizes false
// positives), matching how conditional-unlock code is actually written.
func mergeStates(states []*loState) *loState {
	out := states[0]
	for _, st := range states[1:] {
		var held []loAcq
		for _, a := range out.held {
			for _, b := range st.held {
				if a.obj == b.obj {
					held = append(held, a)
					break
				}
			}
		}
		out.held = held
		for obj := range out.deferred {
			if !st.deferred[obj] {
				delete(out.deferred, obj)
			}
		}
	}
	return out
}

// collectMutexNames indexes every mutex-typed field and variable
// defined in the package by name, so `//arcslint:locked mu` can resolve
// "mu" to a lock class when the name is unambiguous.
func (a *loAnalysis) collectMutexNames() {
	for _, obj := range a.p.pkg.Info.Defs {
		v, ok := obj.(*types.Var)
		if !ok || !isMutexType(v.Type()) {
			continue
		}
		a.byName[v.Name()] = append(a.byName[v.Name()], v)
	}
	for name, objs := range a.byName {
		// Deduplicate (a Def appears once, but be safe) and keep
		// deterministic.
		sort.Slice(objs, func(i, j int) bool { return objs[i].Pos() < objs[j].Pos() })
		a.byName[name] = objs
	}
}

func (a *loAnalysis) label(obj types.Object) string {
	if l, ok := a.labels[obj]; ok {
		return l
	}
	return obj.Name()
}

// walkFunc analyzes one function declaration.
func (a *loAnalysis) walkFunc(fd *ast.FuncDecl) {
	fn, _ := a.p.pkg.Info.Defs[fd.Name].(*types.Func)
	if fn == nil || fd.Body == nil {
		return
	}
	f := &loFunc{fn: fn, may: map[types.Object]token.Pos{}}
	a.funcs[fn] = f
	a.fnOrd = append(a.fnOrd, f)

	st := &loState{deferred: map[types.Object]bool{}}
	for _, mu := range lockedMutexes(fd.Doc) {
		objs := a.byName[mu]
		if len(objs) != 1 {
			continue // ambiguous or unknown; guardedby handles the name check
		}
		st.held = append(st.held, loAcq{obj: objs[0], pos: fd.Pos()})
		st.deferred[objs[0]] = true // the caller releases it, not us
	}

	w := &loWalker{a: a, f: f}
	if !w.walkStmt(st, fd.Body) {
		w.checkRelease(st, fd.Body.Rbrace)
	}
}

type loWalker struct {
	a *loAnalysis
	f *loFunc
}

// walkStmt abstractly executes s, mutating st; it returns true when the
// path terminates (return, branch out, all-arms-terminate).
func (w *loWalker) walkStmt(st *loState, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.walkBody(st, s.List)
	case *ast.ExprStmt:
		w.scanExpr(st, s.X)
	case *ast.SendStmt:
		w.scanExpr(st, s.Chan)
		w.scanExpr(st, s.Value)
	case *ast.IncDecStmt:
		w.scanExpr(st, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.scanExpr(st, e)
		}
		for _, e := range s.Lhs {
			w.scanExpr(st, e)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.scanExpr(st, e)
					}
				}
			}
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.scanExpr(st, e)
		}
		w.checkRelease(st, s.Pos())
		return true
	case *ast.BranchStmt:
		// break/continue/goto end this straight-line path; the
		// conservative choice is to stop checking it.
		return true
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.scanExpr(st, s.Cond)
		thenSt := st.clone()
		var live []*loState
		if !w.walkStmt(thenSt, s.Body) {
			live = append(live, thenSt)
		}
		if s.Else != nil {
			elseSt := st.clone()
			if !w.walkStmt(elseSt, s.Else) {
				live = append(live, elseSt)
			}
		} else {
			live = append(live, st.clone())
		}
		if len(live) == 0 {
			return true
		}
		*st = *mergeStates(live)
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		if s.Cond != nil {
			w.scanExpr(st, s.Cond)
		}
		bodySt := st.clone()
		if !w.walkStmt(bodySt, s.Body) {
			if s.Post != nil {
				w.walkStmt(bodySt, s.Post)
			}
			*st = *mergeStates([]*loState{st, bodySt})
		}
	case *ast.RangeStmt:
		w.scanExpr(st, s.X)
		bodySt := st.clone()
		if !w.walkStmt(bodySt, s.Body) {
			*st = *mergeStates([]*loState{st, bodySt})
		}
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		if s.Tag != nil {
			w.scanExpr(st, s.Tag)
		}
		return w.walkCases(st, s.Body, false)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(st, s.Init)
		}
		w.walkStmt(st, s.Assign)
		return w.walkCases(st, s.Body, false)
	case *ast.SelectStmt:
		return w.walkCases(st, s.Body, true)
	case *ast.DeferStmt:
		w.handleDefer(st, s.Call)
	case *ast.GoStmt:
		// Runs concurrently; its locks are its own problem (analyzed
		// when the callee is a declared function).
	case *ast.LabeledStmt:
		return w.walkStmt(st, s.Stmt)
	}
	return false
}

func (w *loWalker) walkBody(st *loState, list []ast.Stmt) bool {
	for _, s := range list {
		if w.walkStmt(st, s) {
			return true
		}
	}
	return false
}

// walkCases handles switch/type-switch/select bodies. exhaustive marks
// constructs with no fall-past path unless a branch completes (select);
// a switch without a default falls through with the entry state.
func (w *loWalker) walkCases(st *loState, body *ast.BlockStmt, exhaustive bool) bool {
	var live []*loState
	hasDefault := false
	for _, cs := range body.List {
		var stmts []ast.Stmt
		branch := st.clone()
		switch cs := cs.(type) {
		case *ast.CaseClause:
			if cs.List == nil {
				hasDefault = true
			}
			for _, e := range cs.List {
				w.scanExpr(branch, e)
			}
			stmts = cs.Body
		case *ast.CommClause:
			if cs.Comm == nil {
				hasDefault = true
			} else {
				w.walkStmt(branch, cs.Comm)
			}
			stmts = cs.Body
		}
		if !w.walkBody(branch, stmts) {
			live = append(live, branch)
		}
	}
	if !exhaustive && !hasDefault {
		live = append(live, st.clone())
	}
	if len(live) == 0 {
		return true
	}
	*st = *mergeStates(live)
	return false
}

func (w *loWalker) handleDefer(st *loState, call *ast.CallExpr) {
	if obj, _, kind := w.lockCallTarget(call); obj != nil && (kind == "Unlock" || kind == "RUnlock") {
		st.deferred[obj] = true
		return
	}
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				if obj, _, kind := w.lockCallTarget(c); obj != nil && (kind == "Unlock" || kind == "RUnlock") {
					st.deferred[obj] = true
				}
			}
			return true
		})
	}
}

// scanExpr walks an expression for lock operations and same-package
// calls, in (approximate) evaluation order. Closure bodies are opaque.
func (w *loWalker) scanExpr(st *loState, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			w.handleCall(st, n)
		}
		return true
	})
}

func (w *loWalker) handleCall(st *loState, call *ast.CallExpr) {
	obj, read, kind := w.lockCallTarget(call)
	if obj != nil {
		switch kind {
		case "Lock", "RLock":
			for _, h := range st.held {
				if h.obj == obj {
					verb := "Lock"
					if read {
						verb = "RLock"
					}
					w.a.p.report(call.Pos(), CheckLockOrder,
						"%s of %s while already held (acquired at %s); sync mutexes are not reentrant",
						verb, w.a.label(obj), w.a.p.position(h.pos))
					return
				}
			}
			for _, h := range st.held {
				w.a.addEdge(h.obj, obj, call.Pos())
			}
			st.held = append(st.held, loAcq{obj: obj, read: read, pos: call.Pos()})
			w.f.may[obj] = call.Pos()
		case "Unlock", "RUnlock":
			for i := len(st.held) - 1; i >= 0; i-- {
				if st.held[i].obj == obj {
					st.held = append(st.held[:i], st.held[i+1:]...)
					break
				}
			}
		}
		return
	}
	if callee := calleeFunc(w.a.p.pkg, call); callee != nil {
		w.f.calls = append(w.f.calls, loCall{
			callee: callee,
			held:   append([]loAcq(nil), st.held...),
			pos:    call.Pos(),
		})
	}
}

// lockCallTarget resolves a call of the form <expr>.Lock/RLock/Unlock/
// RUnlock on a sync mutex to the mutex's lock class. It also learns the
// class's display label ("Store.walMu") from the selector shape.
func (w *loWalker) lockCallTarget(call *ast.CallExpr) (obj types.Object, read bool, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, ""
	}
	kind = sel.Sel.Name
	switch kind {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, false, ""
	}
	recv := ast.Unparen(sel.X)
	if !isMutexType(w.a.p.pkg.Info.TypeOf(recv)) {
		return nil, false, ""
	}
	read = kind == "RLock" || kind == "RUnlock"
	switch recv := recv.(type) {
	case *ast.Ident:
		obj = w.a.p.pkg.Info.Uses[recv]
		if obj != nil {
			w.a.labels[obj] = recv.Name
		}
	case *ast.SelectorExpr:
		if s, ok := w.a.p.pkg.Info.Selections[recv]; ok {
			obj = s.Obj()
			if obj != nil {
				w.a.labels[obj] = recvTypeName(s.Recv()) + "." + obj.Name()
			}
		} else {
			obj = w.a.p.pkg.Info.Uses[recv.Sel] // package-qualified var
			if obj != nil {
				w.a.labels[obj] = recv.Sel.Name
			}
		}
	}
	return obj, read, kind
}

func recvTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return strings.TrimPrefix(t.String(), "*")
}

// checkRelease reports held, non-deferred locks at a path exit.
func (w *loWalker) checkRelease(st *loState, pos token.Pos) {
	for _, h := range st.held {
		if st.deferred[h.obj] {
			continue
		}
		w.a.p.report(pos, CheckLockOrder,
			"this path leaves %s locked (acquired at %s); missing unlock or defer on the branch",
			w.a.label(h.obj), w.a.p.position(h.pos))
	}
}

func (a *loAnalysis) addEdge(from, to types.Object, pos token.Pos) {
	if from == to {
		return // reported as double acquisition, not an order edge
	}
	e := loEdge{from, to}
	if old, ok := a.order[e]; !ok || pos < old {
		a.order[e] = pos
	}
}

// propagate computes the transitive may-acquire set of every function
// over the same-package call graph.
func (a *loAnalysis) propagate() {
	for changed := true; changed; {
		changed = false
		for _, f := range a.fnOrd {
			for _, c := range f.calls {
				cf := a.funcs[c.callee]
				if cf == nil {
					continue
				}
				for obj, pos := range cf.may {
					if _, ok := f.may[obj]; !ok {
						f.may[obj] = pos
						changed = true
					}
				}
			}
		}
	}
}

// linkCalls adds interprocedural order edges (held at call site ->
// acquired inside the callee) and flags calls that may re-acquire a
// held lock through the chain.
func (a *loAnalysis) linkCalls() {
	for _, f := range a.fnOrd {
		for _, c := range f.calls {
			cf := a.funcs[c.callee]
			if cf == nil || len(c.held) == 0 {
				continue
			}
			acquired := make([]types.Object, 0, len(cf.may))
			for obj := range cf.may {
				acquired = append(acquired, obj)
			}
			sort.Slice(acquired, func(i, j int) bool { return acquired[i].Pos() < acquired[j].Pos() })
			for _, h := range c.held {
				for _, obj := range acquired {
					if obj == h.obj {
						a.p.report(c.pos, CheckLockOrder,
							"call to %s while holding %s; the callee may acquire %s again (at %s)",
							c.callee.Name(), a.label(h.obj), a.label(obj), a.p.position(cf.may[obj]))
						continue
					}
					a.addEdge(h.obj, obj, c.pos)
				}
			}
		}
	}
}

// reportCycles finds strongly connected components of the acquisition
// order graph and reports every edge inside one: concurrent callers
// taking the locks in the two orders can deadlock.
func (a *loAnalysis) reportCycles() {
	// Deterministic node order.
	nodes := map[types.Object]bool{}
	for e := range a.order {
		nodes[e.from] = true
		nodes[e.to] = true
	}
	ordered := make([]types.Object, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Pos() < ordered[j].Pos() })

	adj := map[types.Object][]types.Object{}
	for e := range a.order {
		adj[e.from] = append(adj[e.from], e.to)
	}
	for _, tos := range adj {
		sort.Slice(tos, func(i, j int) bool { return tos[i].Pos() < tos[j].Pos() })
	}

	// Tarjan SCC.
	index := map[types.Object]int{}
	low := map[types.Object]int{}
	onStack := map[types.Object]bool{}
	var stack []types.Object
	comp := map[types.Object]int{}
	next, ncomp := 0, 0
	var strongconnect func(v types.Object)
	strongconnect = func(v types.Object) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, u := range adj[v] {
			if _, seen := index[u]; !seen {
				strongconnect(u)
				if low[u] < low[v] {
					low[v] = low[u]
				}
			} else if onStack[u] && index[u] < low[v] {
				low[v] = index[u]
			}
		}
		if low[v] == index[v] {
			for {
				u := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[u] = false
				comp[u] = ncomp
				if u == v {
					break
				}
			}
			ncomp++
		}
	}
	for _, v := range ordered {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}

	compSize := make([]int, ncomp)
	for _, c := range comp {
		compSize[c]++
	}
	// Describe each cyclic component once, then report per-edge so the
	// diagnostic lands on suppressible source lines.
	cycleDesc := map[int]string{}
	for _, v := range ordered {
		c := comp[v]
		if compSize[c] < 2 {
			continue
		}
		if cycleDesc[c] != "" {
			cycleDesc[c] += " <-> "
		}
		cycleDesc[c] += a.label(v)
	}
	type edgeRep struct {
		pos      token.Pos
		from, to types.Object
	}
	var reps []edgeRep
	for e, pos := range a.order {
		if comp[e.from] == comp[e.to] && compSize[comp[e.from]] >= 2 {
			reps = append(reps, edgeRep{pos, e.from, e.to})
		}
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i].pos < reps[j].pos })
	for _, r := range reps {
		a.p.report(r.pos, CheckLockOrder,
			"acquiring %s while holding %s joins a lock-order cycle (%s); concurrent callers can deadlock",
			a.label(r.to), a.label(r.from), cycleDesc[comp[r.from]])
	}
}
