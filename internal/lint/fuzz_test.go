package lint

import (
	"strings"
	"testing"
)

// FuzzParseDirective hardens the suppression-directive parser: whatever
// bytes appear after //arcslint:, the parser must return a structured
// directive or an error — never panic, and never both.
func FuzzParseDirective(f *testing.F) {
	seeds := []string{
		"// ordinary comment",
		"//arcslint:hotpath",
		"//arcslint:hotpath backs a 0-allocs/op baseline",
		"//arcslint:ignore floatcmp exact tie-break",
		"//arcslint:ignore all harness-controlled",
		"//arcslint:ignore guardedby constructor; not escaped",
		"//arcslint:locked mu",
		"//arcslint:locked walMu caller holds it",
		"//arcslint:ignore",
		"//arcslint:ignore floatcmp",
		"//arcslint:ignore nosuch reason",
		"//arcslint:locked 9bad",
		"//arcslint:",
		"//arcslint:\x00\xff",
		"//arcslint:ignore\tfloatcmp\ttabbed reason",
		"//arcslint:locked µtex",
		strings.Repeat("//arcslint:ignore floatcmp ", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, text string) {
		d, err := parseDirective(text)
		if d != nil && err != nil {
			t.Fatalf("parseDirective(%q) returned both a directive and an error", text)
		}
		if !strings.HasPrefix(text, directivePrefix) {
			if d != nil || err != nil {
				t.Fatalf("parseDirective(%q): non-directive comment produced output", text)
			}
			return
		}
		if d == nil {
			return // malformed: reported as a finding by the driver
		}
		switch d.verb {
		case verbIgnore:
			if d.check != "all" && !validChecks[d.check] {
				t.Fatalf("parseDirective(%q) accepted unknown check %q", text, d.check)
			}
			if d.reason == "" {
				t.Fatalf("parseDirective(%q) accepted an ignore without a reason", text)
			}
		case verbLocked:
			if !isIdent(d.mu) {
				t.Fatalf("parseDirective(%q) accepted invalid mutex name %q", text, d.mu)
			}
		case verbHotpath:
			// The reason is optional free text; nothing to validate.
		default:
			t.Fatalf("parseDirective(%q) returned unknown verb %q", text, d.verb)
		}
	})
}

// FuzzParseLockfile hardens the codec.lock.json parser: arbitrary
// bytes must yield a validated schema or an error — never a panic, and
// a schema that survives must re-marshal and re-parse identically
// (canonical form is a fixpoint).
func FuzzParseLockfile(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"format":1}`,
		`{"format":2}`,
		`{"format":1,"kinds":{"KindEntry":1,"KindReport":2}}`,
		`{"format":1,"kinds":{"":1}}`,
		`{"format":1,"versions":{"snapshotVersion":1}}`,
		`{"format":1,"versions":{"v":-3}}`,
		`{"format":1,"messages":{"Encoder.AppendEntry":[{"name":"entKey","num":1,"wire":"bytes"}]}}`,
		`{"format":1,"messages":{"m":[{"name":"a","num":1,"wire":"bytes"},{"name":"b","num":1,"wire":"varint"}]}}`,
		`{"format":1,"messages":{"m":[{"name":"a","num":1,"wire":"wat"}]}}`,
		`{"format":1,"columns":{"Encoder.AppendSnapshot":[{"name":"Key.App","wire":"uvarint"}]}}`,
		`{"format":1,"columns":{"f":[{"name":"","wire":"uvarint"}]}}`,
		`[1,2,3]`,
		`{"format":1,"kinds":{"K`,
		"\x00\xff{",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseLockfile(data)
		if s == nil && err == nil {
			t.Fatalf("ParseLockfile(%q) returned neither schema nor error", data)
		}
		if s == nil {
			return
		}
		again, err := ParseLockfile(s.Marshal())
		if err != nil {
			t.Fatalf("re-parse of marshalled schema failed: %v", err)
		}
		if string(again.Marshal()) != string(s.Marshal()) {
			t.Fatalf("canonical form is not a fixpoint:\n%s\nvs\n%s", s.Marshal(), again.Marshal())
		}
	})
}

// FuzzParsePolicy hardens the policy-table parser the same way:
// arbitrary input must yield a valid table or an error, and the
// resulting table must answer ChecksFor without panicking.
func FuzzParsePolicy(f *testing.F) {
	seeds := []string{
		"",
		"# just a comment\n",
		"arcs/... guardedby",
		"arcs/internal/sim determinism,floatcmp\narcs/internal/store errcheck-io",
		"... guardedby",
		"arcs/internal/sim",
		"arcs/internal/sim nosuchcheck",
		"a b c",
		"arcs/inter...nal floatcmp",
		"\x00 \xff",
		"arcs/... determinism,determinism,determinism",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		pol, err := ParsePolicy(src)
		if err != nil {
			if len(pol.Rules) != 0 {
				t.Fatalf("ParsePolicy error carried a non-empty table")
			}
			return
		}
		for _, r := range pol.Rules {
			if len(r.Checks) == 0 {
				t.Fatalf("ParsePolicy accepted rule with no checks: %+v", r)
			}
			for _, c := range r.Checks {
				if !validChecks[c] {
					t.Fatalf("ParsePolicy accepted unknown check %q", c)
				}
			}
		}
		for _, path := range []string{"arcs", "arcs/internal/sim", "x/y/z", ""} {
			_ = pol.ChecksFor(path)
		}
	})
}
