package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Check names. CheckDirective is the driver's own check for malformed
// arcslint: comments; it is always on and cannot be suppressed.
const (
	CheckDeterminism = "determinism"
	CheckGuardedBy   = "guardedby"
	CheckErrcheckIO  = "errcheck-io"
	CheckFloatCmp    = "floatcmp"
	CheckDirective   = "directive"
	CheckWireSchema  = "wireschema"
	CheckLockOrder   = "lockorder"
	CheckHotPath     = "hotpathalloc"
)

// validChecks are the names accepted in policy rules and in ignore
// directives ("all" additionally suppresses every check on a line).
var validChecks = map[string]bool{
	CheckDeterminism: true,
	CheckGuardedBy:   true,
	CheckErrcheckIO:  true,
	CheckFloatCmp:    true,
	CheckWireSchema:  true,
	CheckLockOrder:   true,
	CheckHotPath:     true,
}

// Rule enables a set of checks for the packages matching Pattern: an
// exact import path, or a prefix pattern ending in "/..." ("..." alone
// matches everything).
type Rule struct {
	Pattern string
	Checks  []string
}

// Policy is the per-package check table. A package gets the union of
// the checks from every rule whose pattern matches its import path; a
// package no rule matches is not analyzed at all.
type Policy struct {
	Rules []Rule
}

// ChecksFor returns the checks enabled for an import path, sorted and
// deduplicated.
func (p Policy) ChecksFor(path string) []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		if matchPattern(r.Pattern, path) {
			for _, c := range r.Checks {
				set[c] = true
			}
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// matchPattern reports whether an import path matches a rule pattern.
// "..." matches everything; "prefix/..." matches prefix and anything
// under it; anything else is an exact match.
func matchPattern(pattern, path string) bool {
	if pattern == "..." {
		return true
	}
	if prefix, ok := strings.CutSuffix(pattern, "/..."); ok {
		return path == prefix || strings.HasPrefix(path, prefix+"/")
	}
	return pattern == path
}

// deterministicPackages are the packages under the determinism
// contract: the simulator, the search stack, the tuner core, the eval
// cache, the kernels, the benchmark harness, the binary codec (the same
// value must always encode to the same bytes — WAL replay and the CI
// perf gate both depend on it), and the fault-injection subsystem (a
// chaos run must reproduce exactly from its seed) must produce
// byte-identical results for identical inputs at any parallelism.
// Serving and measurement packages (server, parfor, rapl, trace,
// cmd/arcsbench, examples) legitimately read wall clocks and are
// exempt — see DESIGN.md §9.
var deterministicPackages = []string{
	"arcs/internal/sim",
	"arcs/internal/harmony",
	"arcs/internal/surrogate",
	"arcs/internal/core",
	"arcs/internal/evalcache",
	"arcs/internal/kernels",
	"arcs/internal/bench",
	"arcs/internal/faults",
	"arcs/internal/codec",
	"arcs/internal/fleet",
}

// DefaultPolicy is the repository contract enforced in CI.
func DefaultPolicy() Policy {
	p := Policy{Rules: []Rule{
		// The guarded-field convention applies module-wide: the check
		// only fires where a `guarded by` annotation exists. The same
		// goes for lockorder (fires only where mutexes are acquired)
		// and hotpathalloc (fires only inside //arcslint:hotpath
		// functions), so both are on everywhere too.
		{Pattern: "arcs/...", Checks: []string{CheckGuardedBy, CheckLockOrder, CheckHotPath}},
		// The wire format is append-only; the extracted schema must
		// match the committed codec.lock.json.
		{Pattern: "arcs/internal/codec", Checks: []string{CheckWireSchema}},
		// Durability and artifact paths must not drop I/O errors.
		{Pattern: "arcs/internal/store", Checks: []string{CheckErrcheckIO, CheckFloatCmp}},
		{Pattern: "arcs/internal/bench", Checks: []string{CheckErrcheckIO}},
		{Pattern: "arcs/cmd/benchjson", Checks: []string{CheckErrcheckIO}},
		// Frames feed the WAL: a dropped write error is silent data loss.
		{Pattern: "arcs/internal/codec", Checks: []string{CheckErrcheckIO}},
		// Keep-best and serving comparisons.
		{Pattern: "arcs/internal/server", Checks: []string{CheckFloatCmp}},
		{Pattern: "arcs/internal/storeclient", Checks: []string{CheckFloatCmp}},
	}}
	for _, path := range deterministicPackages {
		p.Rules = append(p.Rules, Rule{Pattern: path, Checks: []string{CheckDeterminism, CheckFloatCmp}})
	}
	return p
}

// ParsePolicy parses the text form of a policy table, used by the
// -policy flag of cmd/arcslint to override DefaultPolicy. Each
// non-blank, non-# line is
//
//	<pattern> <check>[,<check>...]
//
// e.g. "arcs/internal/sim determinism,floatcmp".
func ParsePolicy(src string) (Policy, error) {
	var p Policy
	for i, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return Policy{}, fmt.Errorf("policy line %d: want \"<pattern> <check>[,<check>...]\", got %q", i+1, line)
		}
		pattern := fields[0]
		if err := validatePattern(pattern); err != nil {
			return Policy{}, fmt.Errorf("policy line %d: %v", i+1, err)
		}
		var checks []string
		for _, c := range strings.Split(fields[1], ",") {
			if !validChecks[c] {
				return Policy{}, fmt.Errorf("policy line %d: unknown check %q (valid: %s)", i+1, c, strings.Join(checkNames(), ", "))
			}
			checks = append(checks, c)
		}
		p.Rules = append(p.Rules, Rule{Pattern: pattern, Checks: checks})
	}
	return p, nil
}

func validatePattern(pattern string) error {
	trimmed, wild := strings.CutSuffix(pattern, "...")
	if wild {
		if trimmed == "" {
			return nil // bare "..."
		}
		if !strings.HasSuffix(trimmed, "/") {
			return fmt.Errorf("pattern %q: \"...\" must follow a \"/\"", pattern)
		}
		trimmed = strings.TrimSuffix(trimmed, "/")
	}
	if trimmed == "" || strings.ContainsAny(trimmed, " \t") {
		return fmt.Errorf("invalid pattern %q", pattern)
	}
	if strings.Contains(trimmed, "...") {
		return fmt.Errorf("pattern %q: \"...\" is only valid as a trailing element", pattern)
	}
	return nil
}

func checkNames() []string {
	out := make([]string, 0, len(validChecks))
	for c := range validChecks {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Directive parsing. A directive is a line comment that begins exactly
// with "//arcslint:" — no space after "//", like //go: directives —
// followed by a verb:
//
//	//arcslint:ignore <check> <reason>   suppress <check> on this line
//	                                     (or the line below, when the
//	                                     directive stands alone)
//	//arcslint:locked <mu> [reason]      this function's caller holds <mu>
//	//arcslint:hotpath [reason]          this function is a zero-alloc
//	                                     hot path; hotpathalloc flags
//	                                     AST-visible escape patterns in it
//
// The reason is mandatory for ignore: an unexplained suppression is a
// malformed directive and fails the build.
const directivePrefix = "//arcslint:"

const (
	verbIgnore  = "ignore"
	verbLocked  = "locked"
	verbHotpath = "hotpath"
)

type directive struct {
	verb   string
	check  string // verbIgnore: the suppressed check, or "all"
	mu     string // verbLocked: the mutex field name
	reason string
}

// parseDirective parses one comment's raw text. It returns (nil, nil)
// for comments that are not arcslint directives at all, and a non-nil
// error for directives that are present but malformed. It never
// panics, whatever the input (FuzzParseDirective).
func parseDirective(text string) (*directive, error) {
	rest, ok := strings.CutPrefix(text, directivePrefix)
	if !ok {
		return nil, nil
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, fmt.Errorf("arcslint: empty directive (want %signore or %slocked)", directivePrefix, directivePrefix)
	}
	switch fields[0] {
	case verbIgnore:
		if len(fields) < 2 {
			return nil, fmt.Errorf("arcslint: ignore directive missing a check name (want %signore <check> <reason>)", directivePrefix)
		}
		check := fields[1]
		if check != "all" && !validChecks[check] {
			return nil, fmt.Errorf("arcslint: ignore directive names unknown check %q (valid: %s, all)", check, strings.Join(checkNames(), ", "))
		}
		if len(fields) < 3 {
			return nil, fmt.Errorf("arcslint: ignore %s needs a reason (want %signore %s <reason>)", check, directivePrefix, check)
		}
		return &directive{verb: verbIgnore, check: check, reason: strings.Join(fields[2:], " ")}, nil
	case verbLocked:
		if len(fields) < 2 {
			return nil, fmt.Errorf("arcslint: locked directive missing a mutex name (want %slocked <mu>)", directivePrefix)
		}
		mu := fields[1]
		if !isIdent(mu) {
			return nil, fmt.Errorf("arcslint: locked directive: %q is not a valid field name", mu)
		}
		return &directive{verb: verbLocked, mu: mu, reason: strings.Join(fields[2:], " ")}, nil
	case verbHotpath:
		return &directive{verb: verbHotpath, reason: strings.Join(fields[1:], " ")}, nil
	default:
		return nil, fmt.Errorf("arcslint: unknown directive verb %q (want ignore, locked, or hotpath)", fields[0])
	}
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		alpha := r == '_' || (r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z')
		if !alpha && (i == 0 || r < '0' || r > '9') {
			return false
		}
	}
	return true
}
