package lint

import (
	"strings"
	"testing"
)

// TestExtractSchemaCorpus pins the self-configuring extraction on the
// miniature corpus codec: appender discovery through appendTag, field
// tags and wire types, kind constants, true version constants, and the
// columnar layout.
func TestExtractSchemaCorpus(t *testing.T) {
	pkg := loadCorpus(t, "wireschema")
	s, problems := ExtractSchema(pkg)
	// Four seeded problems: the duplicate kind value, the reused tag,
	// the non-constant tag, and the suppressed duplicate — suppression
	// happens at the Analyze layer, not during extraction.
	if len(problems) != 4 {
		for _, pr := range problems {
			t.Logf("problem: %s: %s", pkg.Fset.Position(pr.pos), pr.msg)
		}
		t.Fatalf("got %d extraction problems, want 4", len(problems))
	}

	if got := s.Kinds["KindAlpha"]; got != 1 {
		t.Errorf("KindAlpha = %d, want 1", got)
	}
	if got := s.Kinds["KindBeta"]; got != 2 {
		t.Errorf("KindBeta = %d, want 2", got)
	}
	if _, dup := s.Kinds["KindDup"]; dup {
		t.Errorf("KindDup (duplicate value) must not be locked")
	}
	if got := s.Versions["miniVersion"]; got != 3 {
		t.Errorf("miniVersion = %d, want 3", got)
	}
	if _, leaked := s.Versions["fldA"]; leaked {
		t.Errorf("tag constant fldA leaked into versions")
	}

	fields := s.Messages["encodeGood"]
	if len(fields) != 2 {
		t.Fatalf("encodeGood fields = %+v, want 2", fields)
	}
	if fields[0] != (SchemaField{Name: "fldA", Num: 1, Wire: "varint"}) {
		t.Errorf("encodeGood[0] = %+v", fields[0])
	}
	if fields[1] != (SchemaField{Name: "fldB", Num: 2, Wire: "fixed8"}) {
		t.Errorf("encodeGood[1] = %+v", fields[1])
	}

	cols := s.Columns["appendSnapshot"]
	if len(cols) != 2 || cols[0] != (SchemaColumn{Name: "ID", Wire: "uvarint"}) || cols[1] != (SchemaColumn{Name: "Perf", Wire: "fixed8"}) {
		t.Errorf("appendSnapshot columns = %+v, want [ID uvarint, Perf fixed8]", cols)
	}
}

// TestRealCodecSchemaMatchesLockfile is the repo-level wire contract:
// the schema extracted from internal/codec must equal the committed
// codec.lock.json exactly — no breaking changes and no unlocked
// additions. This is the same gate `arcslint -schema-only` runs in CI.
func TestRealCodecSchemaMatchesLockfile(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks internal/codec; skipped in -short")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	findings, err := SchemaGate(root)
	if err != nil {
		t.Fatalf("SchemaGate: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}

	// Spot-check the extraction against wire facts the codec tests pin
	// dynamically: the entry frame kind and the snapshot column count.
	pkg, err := loadCodec(root)
	if err != nil {
		t.Fatalf("loadCodec: %v", err)
	}
	s, problems := ExtractSchema(pkg)
	if len(problems) != 0 {
		t.Fatalf("real codec has extraction problems: %v", problems)
	}
	if got := s.Kinds["KindEntry"]; got != 1 {
		t.Errorf("KindEntry = %d, want 1", got)
	}
	entry := s.Messages["Encoder.AppendEntry"]
	if len(entry) != 4 || entry[0].Name != "entKey" || entry[0].Wire != "bytes" {
		t.Errorf("Encoder.AppendEntry fields = %+v", entry)
	}
	if cols := s.Columns["Encoder.AppendSnapshot"]; len(cols) != 12 {
		t.Errorf("Encoder.AppendSnapshot has %d columns, want 12", len(cols))
	}
}

// TestCompareSchemasMutatedTag seeds the exact regression the CI
// verify step performs with sed: renumbering a field tag must produce a
// breaking diagnostic naming the message and the old field.
func TestCompareSchemasMutatedTag(t *testing.T) {
	old := &Schema{
		Format: SchemaFormat,
		Messages: map[string][]SchemaField{
			"Encoder.AppendConfigAnswer": {
				{Name: "ansKey", Num: 1, Wire: "bytes"},
				{Name: "ansSource", Num: 5, Wire: "bytes"},
			},
		},
	}
	mutated := &Schema{
		Format: SchemaFormat,
		Messages: map[string][]SchemaField{
			"Encoder.AppendConfigAnswer": {
				{Name: "ansKey", Num: 1, Wire: "bytes"},
				{Name: "ansSource", Num: 7, Wire: "bytes"},
			},
		},
	}
	breaking, additions := CompareSchemas(old, mutated)
	if len(breaking) != 1 {
		t.Fatalf("breaking = %v, want exactly one", breaking)
	}
	for _, frag := range []string{"Encoder.AppendConfigAnswer", "tag 5", "ansSource", "never recycled"} {
		if !strings.Contains(breaking[0], frag) {
			t.Errorf("breaking diagnostic %q missing %q", breaking[0], frag)
		}
	}
	// The new placement of the moved field is an addition: fixing the
	// diff means reverting the tag, not locking the new number.
	if len(additions) != 1 || !strings.Contains(additions[0], "new tag 7") {
		t.Errorf("additions = %v, want the relocated tag reported as new tag 7", additions)
	}
}

// TestCompareSchemasClassification walks the append-only rules:
// what breaks, what is a compatible addition.
func TestCompareSchemasClassification(t *testing.T) {
	old := &Schema{
		Format:   SchemaFormat,
		Kinds:    map[string]int64{"KindEntry": 1, "KindGone": 2},
		Versions: map[string]int64{"snapshotVersion": 1, "droppedVersion": 2},
		Messages: map[string][]SchemaField{
			"enc": {
				{Name: "a", Num: 1, Wire: "varint"},
				{Name: "b", Num: 2, Wire: "bytes"},
			},
		},
		Columns: map[string][]SchemaColumn{
			"snap": {{Name: "Key", Wire: "uvarint"}, {Name: "Perf", Wire: "fixed8"}},
		},
	}
	next := &Schema{
		Format:   SchemaFormat,
		Kinds:    map[string]int64{"KindEntry": 3, "KindNew": 4, "KindRecycle": 2},
		Versions: map[string]int64{"snapshotVersion": 2, "freshVersion": 1},
		Messages: map[string][]SchemaField{
			"enc": {
				{Name: "a", Num: 1, Wire: "fixed8"},
				{Name: "bRenamed", Num: 2, Wire: "bytes"},
				{Name: "c", Num: 3, Wire: "varint"},
			},
		},
		Columns: map[string][]SchemaColumn{
			"snap": {{Name: "Key", Wire: "uvarint"}, {Name: "Perf", Wire: "fixed8"}, {Name: "Version", Wire: "uvarint"}},
		},
	}
	breaking, additions := CompareSchemas(old, next)
	wantBreaking := []string{
		"KindGone",                    // kind removed
		"KindEntry renumbered",        // kind value changed
		"KindRecycle reuses retired",  // retired value reused
		"droppedVersion removed",      // version const removed
		"tag 1 (a) wire type changed", // wire change
	}
	for _, frag := range wantBreaking {
		if !containsFrag(breaking, frag) {
			t.Errorf("breaking %v missing %q", breaking, frag)
		}
	}
	wantAdditions := []string{
		"new frame kind KindNew",
		"snapshotVersion bumped 1 -> 2",
		"new format version constant freshVersion",
		"tag 2 renamed b -> bRenamed",
		"new tag 3 (c, varint)",
		"column Version(uvarint) appended",
	}
	for _, frag := range wantAdditions {
		if !containsFrag(additions, frag) {
			t.Errorf("additions %v missing %q", additions, frag)
		}
	}
	if len(breaking) != len(wantBreaking) {
		t.Errorf("breaking = %v (%d entries), want %d", breaking, len(breaking), len(wantBreaking))
	}

	// Reordering columns is breaking even with nothing removed.
	swapped := &Schema{
		Format:  SchemaFormat,
		Columns: map[string][]SchemaColumn{"snap": {{Name: "Perf", Wire: "fixed8"}, {Name: "Key", Wire: "uvarint"}}},
	}
	base := &Schema{
		Format:  SchemaFormat,
		Columns: map[string][]SchemaColumn{"snap": {{Name: "Key", Wire: "uvarint"}, {Name: "Perf", Wire: "fixed8"}}},
	}
	b, _ := CompareSchemas(base, swapped)
	if !containsFrag(b, "column order is frozen") {
		t.Errorf("column reorder not flagged as breaking: %v", b)
	}
}

func containsFrag(list []string, frag string) bool {
	for _, s := range list {
		if strings.Contains(s, frag) {
			return true
		}
	}
	return false
}

// TestParseLockfile covers the validation the fuzz target relies on.
func TestParseLockfile(t *testing.T) {
	good := &Schema{
		Format:   SchemaFormat,
		Kinds:    map[string]int64{"KindEntry": 1},
		Versions: map[string]int64{"snapshotVersion": 1},
		Messages: map[string][]SchemaField{"enc": {{Name: "a", Num: 1, Wire: "varint"}}},
		Columns:  map[string][]SchemaColumn{"snap": {{Name: "Key", Wire: "uvarint"}}},
	}
	s, err := ParseLockfile(good.Marshal())
	if err != nil {
		t.Fatalf("round-trip parse: %v", err)
	}
	if string(s.Marshal()) != string(good.Marshal()) {
		t.Errorf("marshal is not canonical:\n%s\nvs\n%s", s.Marshal(), good.Marshal())
	}

	for name, bad := range map[string]string{
		"invalid json":  `{"format":`,
		"wrong format":  `{"format":99}`,
		"empty message": `{"format":1,"messages":{"":[{"name":"a","num":1,"wire":"varint"}]}}`,
		"bad wire":      `{"format":1,"messages":{"m":[{"name":"a","num":1,"wire":"zigzag"}]}}`,
		"negative num":  `{"format":1,"messages":{"m":[{"name":"a","num":-1,"wire":"varint"}]}}`,
		"duplicate tag": `{"format":1,"messages":{"m":[{"name":"a","num":1,"wire":"varint"},{"name":"b","num":1,"wire":"varint"}]}}`,
		"empty column":  `{"format":1,"columns":{"f":[{"name":"","wire":"uvarint"}]}}`,
		"bad kind":      `{"format":1,"kinds":{"KindX":-2}}`,
		"bad version":   `{"format":1,"versions":{"v":-1}}`,
		"empty colfunc": `{"format":1,"columns":{"":[{"name":"K","wire":"uvarint"}]}}`,
	} {
		if _, err := ParseLockfile([]byte(bad)); err == nil {
			t.Errorf("ParseLockfile accepted %s: %s", name, bad)
		}
	}
}
