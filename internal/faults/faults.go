// Package faults is a deterministic, seeded fault-injection subsystem
// for torturing the arcsd serving chain. It provides three injectable
// seams:
//
//   - FS, a store.FS implementation that injects I/O errors, short/torn
//     writes, fsync failures, and crash-at-byte-offset truncation into
//     the knowledge store's durability path;
//   - Transport, an http.RoundTripper that injects latency, connection
//     resets, 5xx bursts, and hangs into the storeclient;
//   - Searcher, a server.Searcher wrapper that makes server-side
//     searches slow, failing, or panicking.
//
// All injection decisions flow through one Injector: an explicitly
// seeded PRNG plus an ordered fault schedule (Rules). Two runs with the
// same seed, schedule, and operation sequence make identical decisions,
// so every chaos failure reproduces from its logged seed. The package is
// under the repo's arcslint determinism contract: no wall-clock reads
// and no global math/rand influence any schedule decision.
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Op identifies a class of injectable operation sites.
type Op string

const (
	OpMkdir  Op = "fs.mkdir"
	OpOpen   Op = "fs.open"
	OpRead   Op = "fs.read"
	OpWrite  Op = "fs.write"
	OpSync   Op = "fs.sync"
	OpClose  Op = "fs.close"
	OpRename Op = "fs.rename"
	OpRemove Op = "fs.remove"
	OpHTTP   Op = "http.roundtrip"
	OpSearch Op = "search"
)

// Kind is the fault a firing rule injects.
type Kind int

const (
	// None is the zero value: no fault (an unset rule is invalid).
	None Kind = iota
	// Err makes the operation fail with Rule.Err (ErrInjected when unset).
	Err
	// ShortWrite persists only half the buffer and fails the write — a
	// torn WAL line.
	ShortWrite
	// Crash arms machine death at Rule.Offset cumulative bytes written to
	// the matched file: the write reaching the offset is truncated there
	// and every later operation on the filesystem fails with ErrCrashed.
	Crash
	// Latency delays the operation by Rule.Latency, then lets it proceed.
	Latency
	// Hang blocks until the request context is done (FS operations, which
	// have no context, treat Hang as Err).
	Hang
	// Status5xx synthesizes an HTTP error response (Rule.Status, default
	// 503) without touching the network.
	Status5xx
	// Reset fails the request with a connection-reset-shaped error.
	Reset
	// Panic makes the operation panic — only meaningful for Searcher.
	Panic
	// Truncate lets the round trip succeed but cuts the response body
	// after Rule.Offset bytes (default 64) with a reset-shaped error — a
	// connection dying mid-response. Only meaningful for Transport; the
	// receiver of a framed stream sees a torn frame that fails its CRC.
	Truncate
	kindEnd
)

var kindNames = [...]string{
	None: "none", Err: "err", ShortWrite: "short-write", Crash: "crash",
	Latency: "latency", Hang: "hang", Status5xx: "5xx", Reset: "reset", Panic: "panic",
	Truncate: "truncate",
}

func (k Kind) String() string {
	if k < None || k >= kindEnd {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Sentinel errors injected faults resolve to (match with errors.Is).
var (
	ErrInjected = errors.New("faults: injected error")
	ErrCrashed  = errors.New("faults: filesystem crashed")
	ErrReset    = errors.New("faults: connection reset")
)

// Rule is one entry of a fault schedule. Rules are evaluated in the
// order they were added; the first rule that matches an operation fires.
type Rule struct {
	// Op selects the operation class (required).
	Op Op
	// Kind selects the fault (required).
	Kind Kind
	// Match restricts the rule to operations whose target (file path,
	// URL path, app name) contains this substring; empty matches all.
	Match string
	// After skips the first After matching operations of this Op class.
	After uint64
	// Count caps how many times the rule fires; 0 is unlimited.
	Count uint64
	// Prob fires the rule with this probability per matching operation,
	// drawn from the injector's seeded PRNG. 0 means always (the common
	// deterministic-schedule case); values must lie in [0, 1].
	Prob float64
	// Latency is the injected delay for Latency kinds.
	Latency time.Duration
	// Err overrides the injected error for Err kinds.
	Err error
	// Offset is the cumulative-bytes crash point for Crash kinds.
	Offset int64
	// Status is the synthesized response code for Status5xx (default 503).
	Status int
	// RetryAfter, when positive, adds a Retry-After header (seconds) to
	// synthesized Status5xx responses.
	RetryAfter int
}

func (r Rule) validate() error {
	if r.Op == "" {
		return errors.New("faults: rule needs an Op")
	}
	if r.Kind <= None || r.Kind >= kindEnd {
		return fmt.Errorf("faults: rule for %s needs a valid Kind", r.Op)
	}
	if r.Prob < 0 || r.Prob > 1 {
		return fmt.Errorf("faults: rule for %s: Prob %v outside [0, 1]", r.Op, r.Prob)
	}
	if (r.Kind == Crash || r.Kind == Truncate) && r.Offset < 0 {
		return fmt.Errorf("faults: rule for %s: negative %s offset %d", r.Op, r.Kind, r.Offset)
	}
	return nil
}

// decision is one resolved injection outcome handed to a seam.
type decision struct {
	kind       Kind
	err        error
	latency    time.Duration
	offset     int64
	status     int
	retryAfter int
}

// errOr returns the rule's error, or fallback when the rule has none.
func (d decision) errOr(fallback error) error {
	if d.err != nil {
		return d.err
	}
	return fallback
}

type ruleState struct {
	Rule
	fired uint64 // guarded by mu (the owning Injector's)
}

// Injector makes every injection decision from one seeded PRNG and one
// ordered schedule. It is safe for concurrent use; decisions are
// serialised, so a single-goroutine operation sequence is perfectly
// reproducible and a concurrent one is reproducible per interleaving.
type Injector struct {
	seed int64

	mu       sync.Mutex
	rng      *rand.Rand    // guarded by mu
	rules    []*ruleState  // guarded by mu
	seen     map[Op]uint64 // operations observed; guarded by mu
	injected map[Op]uint64 // faults fired; guarded by mu
}

// New creates an Injector with an explicit seed. The seed is the whole
// identity of a chaos run: log it on failure, rerun with it to reproduce.
func New(seed int64) *Injector {
	return &Injector{
		seed:     seed,
		rng:      rand.New(rand.NewSource(seed)),
		seen:     make(map[Op]uint64),
		injected: make(map[Op]uint64),
	}
}

// Seed returns the seed the injector was built with.
func (in *Injector) Seed() int64 { return in.seed }

// Add appends a rule to the schedule. It panics on an invalid rule — a
// malformed chaos schedule is a programming error, not a runtime
// condition to limp past.
func (in *Injector) Add(r Rule) {
	if err := r.validate(); err != nil {
		panic(err)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = append(in.rules, &ruleState{Rule: r})
}

// Clear drops every rule: the faults "lift" and all operations pass
// through untouched. Counters are retained.
func (in *Injector) Clear() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = nil
}

// Seen reports how many operations of a class were observed.
func (in *Injector) Seen(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen[op]
}

// Injected reports how many faults fired for a class.
func (in *Injector) Injected(op Op) uint64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.injected[op]
}

// String summarises seed and per-op counters (deterministically ordered).
func (in *Injector) String() string {
	in.mu.Lock()
	defer in.mu.Unlock()
	ops := make([]string, 0, len(in.seen))
	for op := range in.seen {
		ops = append(ops, string(op))
	}
	sort.Strings(ops)
	var b strings.Builder
	fmt.Fprintf(&b, "faults.Injector(seed=%d", in.seed)
	for _, op := range ops {
		fmt.Fprintf(&b, " %s=%d/%d", op, in.injected[Op(op)], in.seen[Op(op)])
	}
	b.WriteString(")")
	return b.String()
}

// decide records one operation and resolves the first matching rule.
func (in *Injector) decide(op Op, target string) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seen[op]++
	n := in.seen[op]
	for _, rs := range in.rules {
		if rs.Op != op {
			continue
		}
		if rs.Match != "" && !strings.Contains(target, rs.Match) {
			continue
		}
		if n <= rs.After {
			continue
		}
		if rs.Count > 0 && rs.fired >= rs.Count {
			continue
		}
		if rs.Prob > 0 && rs.Prob < 1 && in.rng.Float64() >= rs.Prob {
			continue
		}
		rs.fired++
		in.injected[op]++
		return decision{
			kind: rs.Kind, err: rs.Err, latency: rs.Latency,
			offset: rs.Offset, status: rs.Status, retryAfter: rs.RetryAfter,
		}
	}
	return decision{}
}

// SeedFromEnv returns the chaos seed from $ARCS_CHAOS_SEED, or fallback
// when the variable is unset or unparsable. CI's chaos job pins the seed
// for the reproducible pass and logs the randomized one so any failure
// can be rerun exactly.
func SeedFromEnv(fallback int64) int64 {
	if v := os.Getenv("ARCS_CHAOS_SEED"); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return fallback
}
