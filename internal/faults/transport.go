package faults

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Transport is a fault-injecting http.RoundTripper for the storeclient:
// injected latency, connection resets, synthesized 5xx bursts (with
// optional Retry-After headers), and hangs that block until the request
// context gives up. Decisions key on the request URL path.
type Transport struct {
	inj  *Injector
	base http.RoundTripper
}

// NewTransport wraps base (nil = http.DefaultTransport) with injection.
func NewTransport(inj *Injector, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{inj: inj, base: base}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.decide(OpHTTP, req.URL.Path)
	switch d.kind {
	case None:
	case Latency:
		timer := time.NewTimer(d.latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Reset:
		return nil, fmt.Errorf("faults: %s %s: %w", req.Method, req.URL.Path, ErrReset)
	case Status5xx:
		return synthesize(req, d), nil
	default:
		return nil, fmt.Errorf("faults: %s %s: %w", req.Method, req.URL.Path, d.errOr(ErrInjected))
	}
	return t.base.RoundTrip(req)
}

// synthesize builds an error response without touching the network.
func synthesize(req *http.Request, d decision) *http.Response {
	status := d.status
	if status == 0 {
		status = http.StatusServiceUnavailable
	}
	h := make(http.Header)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	if d.retryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(d.retryAfter))
	}
	body := fmt.Sprintf("%d injected by faults.Transport\n", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

var _ http.RoundTripper = (*Transport)(nil)
