package faults

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Transport is a fault-injecting http.RoundTripper for the storeclient:
// injected latency, connection resets, synthesized 5xx bursts (with
// optional Retry-After headers), and hangs that block until the request
// context gives up. Decisions key on the request URL path.
type Transport struct {
	inj  *Injector
	base http.RoundTripper
}

// NewTransport wraps base (nil = http.DefaultTransport) with injection.
func NewTransport(inj *Injector, base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{inj: inj, base: base}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	d := t.inj.decide(OpHTTP, req.URL.Path)
	switch d.kind {
	case None:
	case Latency:
		timer := time.NewTimer(d.latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	case Hang:
		<-req.Context().Done()
		return nil, req.Context().Err()
	case Reset:
		return nil, fmt.Errorf("faults: %s %s: %w", req.Method, req.URL.Path, ErrReset)
	case Status5xx:
		return synthesize(req, d), nil
	case Truncate:
		resp, err := t.base.RoundTrip(req)
		if err != nil {
			return nil, err
		}
		n := d.offset
		if n <= 0 {
			n = 64
		}
		resp.Body = &truncatedBody{rc: resp.Body, remaining: n}
		return resp, nil
	default:
		return nil, fmt.Errorf("faults: %s %s: %w", req.Method, req.URL.Path, d.errOr(ErrInjected))
	}
	return t.base.RoundTrip(req)
}

// synthesize builds an error response without touching the network.
func synthesize(req *http.Request, d decision) *http.Response {
	status := d.status
	if status == 0 {
		status = http.StatusServiceUnavailable
	}
	h := make(http.Header)
	h.Set("Content-Type", "text/plain; charset=utf-8")
	if d.retryAfter > 0 {
		h.Set("Retry-After", strconv.Itoa(d.retryAfter))
	}
	body := fmt.Sprintf("%d injected by faults.Transport\n", status)
	return &http.Response{
		Status:        fmt.Sprintf("%d %s", status, http.StatusText(status)),
		StatusCode:    status,
		Proto:         req.Proto,
		ProtoMajor:    req.ProtoMajor,
		ProtoMinor:    req.ProtoMinor,
		Header:        h,
		Body:          io.NopCloser(strings.NewReader(body)),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}

// truncatedBody serves the first remaining bytes of the real response
// body, then fails reads with a reset-shaped error — what a client sees
// when the serving daemon dies mid-response. The bytes delivered before
// the cut are real, so a CRC-framed payload arrives torn, not absent.
type truncatedBody struct {
	rc        io.ReadCloser
	remaining int64
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faults: response truncated mid-body: %w", ErrReset)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.rc.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut point: pass EOF through.
		return n, err
	}
	if err == nil && b.remaining <= 0 {
		return n, fmt.Errorf("faults: response truncated mid-body: %w", ErrReset)
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.rc.Close() }

var _ http.RoundTripper = (*Transport)(nil)
