// End-to-end chaos soak: a real store, a real arcsd handler, and a real
// storeclient wired through the fault-injecting transport. The test
// walks the full degradation story — healthy serving, a network fault
// burst that trips the client's circuit breaker, local-fallback serving
// while the breaker is open, then a half-open probe and reconvergence
// once the faults lift. Everything is driven by one logged seed
// (override with ARCS_CHAOS_SEED) and a fake breaker clock, so a run is
// reproducible byte-for-byte, including under -race.
package faults_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	arcs "arcs/internal/core"
	"arcs/internal/faults"
	"arcs/internal/server"
	"arcs/internal/store"
	"arcs/internal/storeclient"
)

// fakeClock is a manually advanced clock for the breaker.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestChaosSoakBreakerDegradesAndReconverges(t *testing.T) {
	seed := faults.SeedFromEnv(42)
	t.Logf("chaos seed %d (rerun with ARCS_CHAOS_SEED=%d)", seed, seed)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(server.New(server.Config{Store: st}))
	defer ts.Close()

	inj := faults.New(seed)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	const openFor = 10 * time.Second
	client := storeclient.New(ts.URL,
		storeclient.WithHTTPClient(&http.Client{Transport: faults.NewTransport(inj, nil)}),
		storeclient.WithRetries(1),
		storeclient.WithBackoff(time.Millisecond),
		storeclient.WithMaxBackoff(2*time.Millisecond),
		storeclient.WithJitterSeed(seed),
		storeclient.WithBreaker(3, openFor),
		storeclient.WithBreakerClock(clock.now),
	)
	hist := storeclient.NewHistory(client, storeclient.WithTimeout(5*time.Second))
	k1 := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "r0"}
	k2 := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 80, Region: "r0"}

	// Phase 1 — healthy: a save round-trips to the server and loads back.
	hist.Save(k1, arcs.ConfigValues{Threads: 16, Chunk: 8}, 1.5)
	if cfg, ok := hist.Load(k1); !ok || cfg.Threads != 16 {
		t.Fatalf("healthy load = %+v ok=%v", cfg, ok)
	}
	if err := hist.Err(); err != nil {
		t.Fatalf("healthy phase recorded error: %v", err)
	}
	if state, _ := client.BreakerState(); state != "closed" {
		t.Fatalf("breaker %s before any fault", state)
	}

	// Phase 2 — fault burst: every request dies with a connection reset.
	// k1 is already mirrored locally (every Save is), so the tuner's own
	// keys still answer; a key this process never saved is a true miss.
	inj.Add(faults.Rule{Op: faults.OpHTTP, Kind: faults.Reset})
	foreign := arcs.HistoryKey{App: "BT", Workload: "C", CapW: 90, Region: "zz"}
	for i := 0; i < 3; i++ {
		if _, ok := hist.Load(foreign); ok {
			t.Fatalf("load %d of a never-saved key succeeded through a dead network", i)
		}
	}
	if cfg, ok := hist.Load(k1); !ok || cfg.Threads != 16 {
		t.Fatalf("own key unavailable during fault burst: %+v ok=%v", cfg, ok)
	}
	if err := hist.Err(); !errors.Is(err, faults.ErrReset) {
		t.Fatalf("fault burst surfaced %v, want a connection reset", err)
	}
	if state, opens := client.BreakerState(); state != "open" || opens != 1 {
		t.Fatalf("breaker %s/%d after 3 consecutive failures, want open/1", state, opens)
	}

	// Phase 3 — breaker open: the client sheds locally, with zero traffic
	// reaching the transport, and the tuner keeps working from its own
	// saves at memory speed.
	attemptsBefore := inj.Seen(faults.OpHTTP)
	hist.Save(k2, arcs.ConfigValues{Threads: 24, Chunk: 4}, 1.2)
	if cfg, ok := hist.Load(k2); !ok || cfg.Threads != 24 {
		t.Fatalf("local fallback load = %+v ok=%v", cfg, ok)
	}
	if cfg, dist, ok := hist.LoadNearest(arcs.HistoryKey{App: "SP", Workload: "B", CapW: 78, Region: "r0"}); !ok || dist != 2 || cfg.Threads != 24 {
		t.Fatalf("local nearest = %+v dist=%v ok=%v, want the cap-80 entry at distance 2", cfg, dist, ok)
	}
	if hist.LocalAnswers() < 2 {
		t.Fatalf("LocalAnswers = %d, want >= 2", hist.LocalAnswers())
	}
	if got := inj.Seen(faults.OpHTTP); got != attemptsBefore {
		t.Fatalf("breaker-open phase leaked %d requests to the network", got-attemptsBefore)
	}
	if err := hist.Err(); err != nil {
		t.Fatalf("breaker sheds must not be recorded as errors, got %v", err)
	}
	if err := client.Health(context.Background()); !errors.Is(err, storeclient.ErrBreakerOpen) {
		t.Fatalf("direct call while open = %v, want ErrBreakerOpen", err)
	}

	// Phase 4 — faults lift and the cool-down elapses: the next request is
	// the half-open probe, it succeeds, and the breaker closes.
	inj.Clear()
	clock.advance(openFor)
	if err := client.Health(context.Background()); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	if state, _ := client.BreakerState(); state != "closed" {
		t.Fatalf("breaker %s after successful probe, want closed", state)
	}

	// Phase 5 — reconvergence: entries saved while degraded reach the
	// server on the next save round-trip, and remote serving resumes.
	hist.Save(k2, arcs.ConfigValues{Threads: 24, Chunk: 4}, 1.2)
	if e, ok := st.Get(k2); !ok || e.Cfg.Threads != 24 {
		t.Fatalf("k2 never reached the server after recovery: %+v ok=%v", e, ok)
	}
	if cfg, ok := hist.Load(k1); !ok || cfg.Threads != 16 {
		t.Fatalf("remote load after recovery = %+v ok=%v", cfg, ok)
	}
	if err := hist.Err(); err != nil {
		t.Fatalf("recovered phase recorded error: %v", err)
	}
	t.Logf("soak complete: %s", inj)
}

// TestChaosSoakHalfOpenProbeFailureReopens drives the unhappy half-open
// branch: the probe itself fails, so the breaker re-opens and keeps
// shedding until the next cool-down.
func TestChaosSoakHalfOpenProbeFailureReopens(t *testing.T) {
	seed := faults.SeedFromEnv(43)
	t.Logf("chaos seed %d (rerun with ARCS_CHAOS_SEED=%d)", seed, seed)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(server.New(server.Config{Store: st}))
	defer ts.Close()

	inj := faults.New(seed)
	clock := &fakeClock{t: time.Unix(1000, 0)}
	const openFor = 10 * time.Second
	client := storeclient.New(ts.URL,
		storeclient.WithHTTPClient(&http.Client{Transport: faults.NewTransport(inj, nil)}),
		storeclient.WithRetries(0),
		storeclient.WithBackoff(time.Millisecond),
		storeclient.WithJitterSeed(seed),
		storeclient.WithBreaker(2, openFor),
		storeclient.WithBreakerClock(clock.now),
	)

	// Trip the breaker with synthesized 503 bursts instead of resets —
	// same outcome, different failure mode.
	inj.Add(faults.Rule{Op: faults.OpHTTP, Kind: faults.Status5xx, RetryAfter: 1})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if err := client.Health(ctx); err == nil {
			t.Fatalf("request %d succeeded through a 503 wall", i)
		}
	}
	if state, _ := client.BreakerState(); state != "open" {
		t.Fatalf("breaker %s, want open", state)
	}

	// Cool-down elapses but the server is still broken: the probe fails
	// and the breaker re-opens without letting other traffic through.
	clock.advance(openFor)
	if err := client.Health(ctx); err == nil || errors.Is(err, storeclient.ErrBreakerOpen) {
		t.Fatalf("half-open probe = %v, want a real request failure", err)
	}
	if state, opens := client.BreakerState(); state != "open" || opens != 2 {
		t.Fatalf("breaker %s/%d after failed probe, want open/2", state, opens)
	}
	if err := client.Health(ctx); !errors.Is(err, storeclient.ErrBreakerOpen) {
		t.Fatalf("post-probe request = %v, want ErrBreakerOpen", err)
	}

	// Second cool-down with the fault lifted: probe succeeds, breaker
	// closes, traffic flows.
	inj.Clear()
	clock.advance(openFor)
	if err := client.Health(ctx); err != nil {
		t.Fatalf("recovery probe failed: %v", err)
	}
	if state, _ := client.BreakerState(); state != "closed" {
		t.Fatalf("breaker %s after recovery, want closed", state)
	}
}
