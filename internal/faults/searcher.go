package faults

import (
	"context"
	"fmt"
	"time"

	"arcs/internal/server"
)

// Searcher is a fault-injecting server.Searcher: searches can be made
// slow (Latency), failing (Err), hanging (until ctx is done), or
// panicking — the last is how the server's panic-containment is proven
// to turn a dying search into a 500 instead of a dead daemon. Decisions
// key on the requested app name.
type Searcher struct {
	inj  *Injector
	base server.Searcher
}

// NewSearcher wraps base with injection; nil base selects a searcher
// that succeeds with no results (pure fault-behaviour tests).
func NewSearcher(inj *Injector, base server.Searcher) Searcher {
	if base == nil {
		base = emptySearcher{}
	}
	return Searcher{inj: inj, base: base}
}

// emptySearcher finds nothing, successfully.
type emptySearcher struct{}

func (emptySearcher) Search(context.Context, server.SearchRequest) ([]server.SearchResult, error) {
	return nil, nil
}

// Search implements server.Searcher.
func (s Searcher) Search(ctx context.Context, req server.SearchRequest) ([]server.SearchResult, error) {
	d := s.inj.decide(OpSearch, req.App)
	switch d.kind {
	case None:
	case Latency:
		timer := time.NewTimer(d.latency)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	case Hang:
		<-ctx.Done()
		return nil, ctx.Err()
	case Panic:
		panic(fmt.Sprintf("faults: injected searcher panic (app %s, seed %d)", req.App, s.inj.Seed()))
	default:
		return nil, fmt.Errorf("faults: search %s: %w", req.App, d.errOr(ErrInjected))
	}
	return s.base.Search(ctx, req)
}

var _ server.Searcher = Searcher{}
