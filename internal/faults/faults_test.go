package faults

import (
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRuleMatchingOrderAndFilters(t *testing.T) {
	in := New(1)
	in.Add(Rule{Op: OpWrite, Kind: Err, Match: "wal", Count: 1})
	in.Add(Rule{Op: OpWrite, Kind: ShortWrite})

	// Non-matching target skips the first rule and hits the second.
	if d := in.decide(OpWrite, "snapshot.json"); d.kind != ShortWrite {
		t.Fatalf("snapshot write resolved to %v, want short-write", d.kind)
	}
	// Matching target hits the first rule, once.
	if d := in.decide(OpWrite, "wal.jsonl"); d.kind != Err {
		t.Fatalf("wal write resolved to %v, want err", d.kind)
	}
	if d := in.decide(OpWrite, "wal.jsonl"); d.kind != ShortWrite {
		t.Fatalf("second wal write resolved to %v, want short-write (Count=1 exhausted)", d.kind)
	}
	// Other op classes are untouched.
	if d := in.decide(OpSync, "wal.jsonl"); d.kind != None {
		t.Fatalf("sync resolved to %v, want none", d.kind)
	}
	if got := in.Seen(OpWrite); got != 3 {
		t.Fatalf("Seen(write) = %d, want 3", got)
	}
	if got := in.Injected(OpWrite); got != 3 {
		t.Fatalf("Injected(write) = %d, want 3", got)
	}
}

func TestAfterSkipsEarlyOperations(t *testing.T) {
	in := New(1)
	in.Add(Rule{Op: OpHTTP, Kind: Reset, After: 2})
	for i := 0; i < 2; i++ {
		if d := in.decide(OpHTTP, "/v1/config"); d.kind != None {
			t.Fatalf("op %d resolved to %v, want none (After=2)", i+1, d.kind)
		}
	}
	if d := in.decide(OpHTTP, "/v1/config"); d.kind != Reset {
		t.Fatalf("op 3 resolved to %v, want reset", d.kind)
	}
}

func TestProbIsDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []Kind {
		in := New(seed)
		in.Add(Rule{Op: OpHTTP, Kind: Status5xx, Prob: 0.5})
		out := make([]Kind, 64)
		for i := range out {
			out[i] = in.decide(OpHTTP, "x").kind
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %v vs %v", i, a[i], b[i])
		}
	}
	c := run(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical 64-op schedules; PRNG not wired to seed")
	}
	fired := 0
	for _, k := range a {
		if k != None {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("Prob=0.5 fired %d/%d times; probability gate not applied", fired, len(a))
	}
}

func TestClearLiftsFaults(t *testing.T) {
	in := New(1)
	in.Add(Rule{Op: OpSearch, Kind: Panic})
	if d := in.decide(OpSearch, "SP"); d.kind != Panic {
		t.Fatalf("resolved to %v, want panic", d.kind)
	}
	in.Clear()
	if d := in.decide(OpSearch, "SP"); d.kind != None {
		t.Fatalf("post-Clear resolved to %v, want none", d.kind)
	}
	// Counters survive the clear.
	if in.Seen(OpSearch) != 2 || in.Injected(OpSearch) != 1 {
		t.Fatalf("counters = %d seen / %d injected, want 2/1", in.Seen(OpSearch), in.Injected(OpSearch))
	}
}

func TestInvalidRulesPanic(t *testing.T) {
	for _, r := range []Rule{
		{Kind: Err},                            // no Op
		{Op: OpWrite},                          // no Kind
		{Op: OpWrite, Kind: Err, Prob: 1.5},    // bad probability
		{Op: OpWrite, Kind: Crash, Offset: -1}, // negative offset
		{Op: OpWrite, Kind: Kind(99)},          // unknown kind
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%+v) did not panic", r)
				}
			}()
			New(1).Add(r)
		}()
	}
}

func TestDecisionErrOrAndString(t *testing.T) {
	custom := errors.New("disk on fire")
	in := New(3)
	in.Add(Rule{Op: OpSync, Kind: Err, Err: custom, Latency: time.Millisecond})
	d := in.decide(OpSync, "wal.jsonl")
	if !errors.Is(d.errOr(ErrInjected), custom) {
		t.Fatalf("errOr = %v, want the rule's error", d.errOr(ErrInjected))
	}
	if d := (decision{}); !errors.Is(d.errOr(ErrInjected), ErrInjected) {
		t.Fatalf("empty decision errOr = %v, want fallback", d.errOr(ErrInjected))
	}
	s := in.String()
	if !strings.Contains(s, "seed=3") || !strings.Contains(s, "fs.sync=1/1") {
		t.Fatalf("String() = %q, want seed and per-op counters", s)
	}
}

func TestSeedFromEnv(t *testing.T) {
	t.Setenv("ARCS_CHAOS_SEED", "12345")
	if got := SeedFromEnv(7); got != 12345 {
		t.Fatalf("SeedFromEnv = %d, want 12345", got)
	}
	t.Setenv("ARCS_CHAOS_SEED", "not-a-number")
	if got := SeedFromEnv(7); got != 7 {
		t.Fatalf("SeedFromEnv with garbage = %d, want fallback 7", got)
	}
}

// TestTransportTruncate: the Truncate kind delivers real bytes up to
// the offset, then fails the read with a reset-shaped error — the
// mid-response connection cut a torn range transfer is built from.
func TestTransportTruncate(t *testing.T) {
	body := strings.Repeat("x", 1000)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, body)
	}))
	defer ts.Close()

	in := New(3)
	in.Add(Rule{Op: OpHTTP, Kind: Truncate, Offset: 100, Count: 1})
	client := &http.Client{Transport: NewTransport(in, nil)}

	resp, err := client.Get(ts.URL + "/v1/transfer")
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err == nil || !errors.Is(err, ErrReset) {
		t.Fatalf("truncated read error = %v, want ErrReset", err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d bytes before the cut, want 100", len(got))
	}

	// The rule's Count is spent: the next response arrives whole.
	resp, err = client.Get(ts.URL + "/v1/transfer")
	if err != nil {
		t.Fatal(err)
	}
	got, err = io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || string(got) != body {
		t.Fatalf("post-fault read = %d bytes err %v, want the whole body", len(got), err)
	}
}

func TestKindString(t *testing.T) {
	if Crash.String() != "crash" || None.String() != "none" || Truncate.String() != "truncate" {
		t.Fatalf("Kind names wrong: %v %v %v", Crash, None, Truncate)
	}
	if s := Kind(42).String(); !strings.Contains(s, "42") {
		t.Fatalf("out-of-range Kind String = %q", s)
	}
}
