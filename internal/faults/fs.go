package faults

import (
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"arcs/internal/store"
)

// FS is a fault-injecting store.FS. Every operation consults the
// injector; a Crash fault arms machine death at a cumulative byte offset
// of the matched file — the write that reaches the offset is truncated
// there and every subsequent operation fails with ErrCrashed, exactly
// like yanking power mid-append. Reopening the directory with a clean FS
// is the "reboot".
type FS struct {
	inj  *Injector
	base store.FS

	mu      sync.Mutex
	crashed bool             // machine is dead; guarded by mu
	written map[string]int64 // cumulative bytes per file; guarded by mu
	crashAt map[string]int64 // armed crash offsets per file; guarded by mu
}

// NewFS wraps base (nil = the real filesystem) with fault injection.
func NewFS(inj *Injector, base store.FS) *FS {
	if base == nil {
		base = store.OSFS
	}
	return &FS{
		inj:     inj,
		base:    base,
		written: make(map[string]int64),
		crashAt: make(map[string]int64),
	}
}

// Crashed reports whether a Crash fault has fired.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// apply resolves a decision for a contextless FS operation. Hang has no
// context to wait on here, so it degrades to Err.
func (fs *FS) apply(op Op, name string) error {
	fs.mu.Lock()
	dead := fs.crashed
	fs.mu.Unlock()
	if dead {
		return ErrCrashed
	}
	d := fs.inj.decide(op, name)
	switch d.kind {
	case None:
		return nil
	case Latency:
		time.Sleep(d.latency)
		return nil
	case Crash:
		fs.mu.Lock()
		fs.crashed = true
		fs.mu.Unlock()
		return ErrCrashed
	default:
		return fmt.Errorf("faults: %s %s: %w", op, name, d.errOr(ErrInjected))
	}
}

func (fs *FS) MkdirAll(path string, perm os.FileMode) error {
	if err := fs.apply(OpMkdir, path); err != nil {
		return err
	}
	return fs.base.MkdirAll(path, perm)
}

func (fs *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	if err := fs.apply(OpOpen, name); err != nil {
		return nil, err
	}
	f, err := fs.base.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	if flag&os.O_TRUNC != 0 {
		// The file restarted from zero bytes; restart the crash bookkeeping.
		fs.mu.Lock()
		fs.written[name] = 0
		fs.mu.Unlock()
	}
	return &file{fs: fs, name: name, f: f}, nil
}

func (fs *FS) ReadFile(name string) ([]byte, error) {
	if err := fs.apply(OpRead, name); err != nil {
		return nil, err
	}
	return fs.base.ReadFile(name)
}

func (fs *FS) Rename(oldpath, newpath string) error {
	if err := fs.apply(OpRename, oldpath); err != nil {
		return err
	}
	return fs.base.Rename(oldpath, newpath)
}

func (fs *FS) Remove(name string) error {
	if err := fs.apply(OpRemove, name); err != nil {
		return err
	}
	return fs.base.Remove(name)
}

// file wraps one open file with write/sync/close/read injection.
type file struct {
	fs   *FS
	name string
	f    store.File
}

func (f *file) Read(p []byte) (int, error) {
	if err := f.fs.apply(OpRead, f.name); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

// Write consults the schedule, then the armed crash offset. A crash rule
// does not fail the write that arms it unless the buffer already crosses
// the offset — arming on the first write and dying exactly at the byte
// boundary is what lets the torture test sweep every offset of a
// recorded WAL.
func (f *file) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	dead := f.fs.crashed
	f.fs.mu.Unlock()
	if dead {
		return 0, ErrCrashed
	}
	d := f.fs.inj.decide(OpWrite, f.name)
	switch d.kind {
	case None:
	case Latency:
		time.Sleep(d.latency)
	case ShortWrite:
		n := len(p) / 2
		if n > 0 {
			if wn, err := f.f.Write(p[:n]); err != nil {
				return wn, err
			}
			f.fs.note(f.name, int64(n))
		}
		return n, fmt.Errorf("faults: torn write to %s: %w", f.name, io.ErrShortWrite)
	case Crash:
		f.fs.mu.Lock()
		f.fs.crashAt[f.name] = d.offset
		f.fs.mu.Unlock()
	default:
		return 0, fmt.Errorf("faults: %s %s: %w", OpWrite, f.name, d.errOr(ErrInjected))
	}

	f.fs.mu.Lock()
	limit, armed := f.fs.crashAt[f.name]
	already := f.fs.written[f.name]
	f.fs.mu.Unlock()
	if armed && already+int64(len(p)) > limit {
		keep := limit - already
		if keep < 0 {
			keep = 0
		}
		if keep > 0 {
			if wn, err := f.f.Write(p[:keep]); err != nil {
				keep = int64(wn)
			}
			f.fs.note(f.name, keep)
		}
		f.fs.mu.Lock()
		f.fs.crashed = true
		f.fs.mu.Unlock()
		return int(keep), ErrCrashed
	}
	n, err := f.f.Write(p)
	f.fs.note(f.name, int64(n))
	return n, err
}

func (f *file) Sync() error {
	if err := f.fs.apply(OpSync, f.name); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *file) Close() error {
	if err := f.fs.apply(OpClose, f.name); err != nil {
		// A failed (or crashed) injected close still releases the real
		// descriptor: tests on temp dirs must not leak fds.
		_ = f.f.Close()
		return err
	}
	return f.f.Close()
}

// note records bytes actually persisted to a file.
func (fs *FS) note(name string, n int64) {
	if n <= 0 {
		return
	}
	fs.mu.Lock()
	fs.written[name] += n
	fs.mu.Unlock()
}

var _ store.FS = (*FS)(nil)
