// Hardening tests for the serving path: admission control, panic
// containment, search deadlines, and degraded-store health reporting.
// External test package: these drive the server through internal/faults,
// which itself imports this package.
package server_test

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	arcs "arcs/internal/core"
	"arcs/internal/faults"
	"arcs/internal/server"
	"arcs/internal/store"
)

// blockingSearcher blocks every Search until released, ignoring its
// context (the worst-behaved backend admission control must survive).
type blockingSearcher struct {
	started chan string
	release chan struct{}
}

func (b *blockingSearcher) Search(ctx context.Context, req server.SearchRequest) ([]server.SearchResult, error) {
	b.started <- req.App
	<-b.release
	return nil, nil
}

func newHardenedServer(t *testing.T, cfg server.Config) (*httptest.Server, *store.Store) {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	ts := httptest.NewServer(server.New(cfg))
	t.Cleanup(ts.Close)
	return ts, cfg.Store
}

func get(t *testing.T, url string) (int, http.Header, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, string(body)
}

func metricValue(t *testing.T, body, name string) string {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			return rest
		}
	}
	t.Fatalf("metric %s not found", name)
	return ""
}

func TestSearchAdmissionShedsWith429(t *testing.T) {
	bs := &blockingSearcher{started: make(chan string, 1), release: make(chan struct{})}
	ts, _ := newHardenedServer(t, server.Config{
		Searcher:              bs,
		SearchBudget:          5,
		MaxConcurrentSearches: 1,
		SearchTimeout:         -1,
	})

	// First cold miss occupies the only admission slot.
	firstDone := make(chan int, 1)
	go func() {
		code, _, _ := get(t, ts.URL+"/v1/config?app=SP&workload=B&cap=70&region=r&arch=x86")
		firstDone <- code
	}()
	select {
	case <-bs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first search never started")
	}

	// A different cold key cannot queue: it is shed immediately.
	code, hdr, body := get(t, ts.URL+"/v1/config?app=BT&workload=B&cap=70&region=r&arch=x86")
	if code != http.StatusTooManyRequests {
		t.Fatalf("second cold miss = %d (%s), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 shed without a Retry-After header")
	}

	close(bs.release)
	select {
	case code := <-firstDone:
		// The search found nothing for this region: an honest 404, not 429.
		if code != http.StatusNotFound {
			t.Fatalf("first request finished with %d, want 404", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("first request never finished")
	}

	_, _, metrics := get(t, ts.URL+"/metrics")
	if v := metricValue(t, metrics, "arcsd_search_shed_total"); v != "1" {
		t.Fatalf("arcsd_search_shed_total = %s, want 1", v)
	}
}

func TestPanickingSearcherDoesNotKillDaemon(t *testing.T) {
	inj := faults.New(11)
	inj.Add(faults.Rule{Op: faults.OpSearch, Kind: faults.Panic})
	ts, _ := newHardenedServer(t, server.Config{
		Searcher:     faults.NewSearcher(inj, nil),
		SearchBudget: 5,
	})

	code, _, body := get(t, ts.URL+"/v1/config?app=SP&workload=B&cap=70&region=r&arch=x86")
	if code != http.StatusBadGateway || !strings.Contains(body, "panicked") {
		t.Fatalf("panicking searcher = %d (%s), want 502 mentioning the panic", code, body)
	}
	// The daemon survived and still serves.
	if code, _, _ := get(t, ts.URL+"/healthz"); code != http.StatusOK {
		t.Fatalf("healthz after panic = %d", code)
	}
	_, _, metrics := get(t, ts.URL+"/metrics")
	if v := metricValue(t, metrics, "arcsd_search_panics_total"); v != "1" {
		t.Fatalf("arcsd_search_panics_total = %s, want 1", v)
	}
}

func TestHungSearcherTimesOutWith504(t *testing.T) {
	inj := faults.New(12)
	inj.Add(faults.Rule{Op: faults.OpSearch, Kind: faults.Hang})
	ts, _ := newHardenedServer(t, server.Config{
		Searcher:      faults.NewSearcher(inj, nil),
		SearchBudget:  5,
		SearchTimeout: 50 * time.Millisecond,
	})
	code, _, body := get(t, ts.URL+"/v1/config?app=SP&workload=B&cap=70&region=r&arch=x86")
	if code != http.StatusGatewayTimeout {
		t.Fatalf("hung searcher = %d (%s), want 504", code, body)
	}
}

func TestHealthzReportsDegradedStore(t *testing.T) {
	inj := faults.New(13)
	fs := faults.NewFS(inj, nil)
	st, err := store.Open(t.TempDir(), store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts, _ := newHardenedServer(t, server.Config{Store: st})

	code, _, body := get(t, ts.URL+"/healthz")
	var h server.HealthResponse
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatalf("healthz body %q: %v", body, err)
	}
	if code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy daemon healthz = %d %+v", code, h)
	}

	// Break the WAL until the store degrades.
	inj.Add(faults.Rule{Op: faults.OpWrite, Kind: faults.Err, Match: store.WALName})
	for i := 0; i <= store.DefaultDegradeAfter; i++ {
		st.Save(arcs.HistoryKey{App: "SP", Workload: "B", CapW: float64(60 + i), Region: "r"},
			arcs.ConfigValues{Threads: 4}, 1.0)
	}
	code, _, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	// Still 200: a degraded store serves; probes must not restart it.
	if code != http.StatusOK || h.Status != "degraded" || h.DegradedCause == "" {
		t.Fatalf("degraded healthz = %d %+v", code, h)
	}
	if h.Entries == 0 {
		t.Fatalf("degraded store should still report served entries: %+v", h)
	}
	_, _, metrics := get(t, ts.URL+"/metrics")
	if v := metricValue(t, metrics, "arcsd_store_degraded"); v != "1" {
		t.Fatalf("arcsd_store_degraded = %s, want 1", v)
	}

	// Recovery flips everything back.
	inj.Clear()
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	_, _, body = get(t, ts.URL+"/healthz")
	if err := json.Unmarshal([]byte(body), &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" {
		t.Fatalf("healthz after recovery = %+v", h)
	}
	_, _, metrics = get(t, ts.URL+"/metrics")
	if v := metricValue(t, metrics, "arcsd_store_degraded"); v != "0" {
		t.Fatalf("arcsd_store_degraded after recovery = %s, want 0", v)
	}
}
