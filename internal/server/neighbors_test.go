package server

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	arcs "arcs/internal/core"
	"arcs/internal/store"
)

// getNeighbors fetches /v1/neighbors and decodes the JSON array.
func getNeighbors(t *testing.T, base, query string) ([]NeighborResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/neighbors?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var out []NeighborResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out, resp.StatusCode
}

// TestNeighborsEndpoint checks /v1/neighbors end to end: ranked answers
// under the shared distance order, the max bound, empty-array cold
// starts, and parameter validation.
func TestNeighborsEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := newTestServer(t, Config{Store: st})

	// Same app/region: caps 60 and 85 on workload B, one workload-C
	// entry, plus a different region that must never appear.
	st.Save(arcs.HistoryKey{App: "SP", Workload: "B", CapW: 60, Region: "r"}, arcs.ConfigValues{Threads: 8}, 1.0)
	st.Save(arcs.HistoryKey{App: "SP", Workload: "B", CapW: 85, Region: "r"}, arcs.ConfigValues{Threads: 16}, 2.0)
	st.Save(arcs.HistoryKey{App: "SP", Workload: "C", CapW: 70, Region: "r"}, arcs.ConfigValues{Threads: 4}, 3.0)
	st.Save(arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "other"}, arcs.ConfigValues{Threads: 2}, 4.0)

	out, code := getNeighbors(t, ts.URL, "app=SP&workload=B&cap=70&region=r")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if len(out) != 3 {
		t.Fatalf("got %d neighbours, want 3: %+v", len(out), out)
	}
	// Ranked: cap 60 (dist 10, lower-cap tie rule not needed), cap 85
	// (dist 15), then the cross-workload entry (penalised past any
	// same-workload cap delta).
	if out[0].Key.CapW != 60 || out[1].Key.CapW != 85 {
		t.Errorf("cap order = %g, %g; want 60, 85", out[0].Key.CapW, out[1].Key.CapW)
	}
	if out[2].Key.Workload != "C" {
		t.Errorf("third neighbour = %+v, want workload C last", out[2])
	}
	if out[0].Dist >= out[1].Dist || out[1].Dist >= out[2].Dist {
		t.Errorf("distances not ascending: %g, %g, %g", out[0].Dist, out[1].Dist, out[2].Dist)
	}

	// max truncates after ranking.
	out, _ = getNeighbors(t, ts.URL, "app=SP&workload=B&cap=70&region=r&max=1")
	if len(out) != 1 || out[0].Key.CapW != 60 {
		t.Errorf("max=1 = %+v, want just cap 60", out)
	}

	// A context with no neighbours is 200 with an empty array.
	resp, err := http.Get(ts.URL + "/v1/neighbors?app=LULESH&workload=1&cap=70&region=r")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 64)
	n, _ := resp.Body.Read(body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.HasPrefix(strings.TrimSpace(string(body[:n])), "[") {
		t.Errorf("cold context: status %d body %q, want 200 []", resp.StatusCode, body[:n])
	}

	// Validation: missing app/region, bad cap, out-of-range max, POST.
	for _, q := range []string{
		"workload=B&cap=70&region=r",
		"app=SP&cap=70",
		"app=SP&region=r&cap=nan",
		"app=SP&region=r&cap=70&max=0",
		"app=SP&region=r&cap=70&max=257",
		"app=SP&region=r&cap=70&max=x",
	} {
		if _, code := getNeighbors(t, ts.URL, q); code != http.StatusBadRequest {
			t.Errorf("query %q status = %d, want 400", q, code)
		}
	}
	resp, err = http.Post(ts.URL+"/v1/neighbors", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST status = %d, want 405", resp.StatusCode)
	}

	// The served counter shows up in /metrics.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mb), "arcsd_neighbors_served_total 4") {
		t.Errorf("metrics missing arcsd_neighbors_served_total 4")
	}
}
