package server

// Live-membership endpoints: the heartbeat/gossip pair (/v1/ping,
// /v1/membership), the admin pair (/v1/join, /v1/leave), and the
// bootstrap stream (/v1/transfer). All five are registered
// unconditionally but — except ping, which degrades to an epoch-0
// answer — refuse with 404 on a standalone daemon, matching how a
// pre-fleet arcsd would have answered.

import (
	"encoding/json"
	"io"
	"net/http"
	"strconv"

	"arcs/internal/codec"
	"arcs/internal/store"
)

// MembershipResponse is the JSON body shared by the membership
// endpoints: the node's current member list, plus what the call did.
type MembershipResponse struct {
	// Applied reports whether a pushed member list superseded (and
	// replaced) the local one.
	Applied bool     `json:"applied,omitempty"`
	Epoch   uint64   `json:"epoch"`
	Nodes   []string `json:"nodes"`
	// Drained is the entry-push count of a self-leave drain.
	Drained int `json:"drained,omitempty"`
}

func (s *Server) membershipResponse(applied bool, drained int) MembershipResponse {
	m := s.fleet.Membership()
	return MembershipResponse{Applied: applied, Epoch: m.Epoch, Nodes: m.Nodes, Drained: drained}
}

// handlePing answers liveness probes with the current member list — the
// heartbeat and epoch-gossip channel in one round trip. A standalone
// daemon answers epoch 0 with no nodes, which fleet-aware callers read
// as "nothing to adopt".
func (s *Server) handlePing(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.fleet == nil {
		writeJSON(w, http.StatusOK, MembershipResponse{})
		return
	}
	writeJSON(w, http.StatusOK, s.membershipResponse(false, 0))
}

// handleMembership ingests an epoch-versioned member list pushed by a
// peer (binary KindMemberList frame or JSON). The response is always
// 200 with the list this node holds afterwards: applied=true when the
// push superseded, otherwise the (newer) local list the pusher should
// adopt — losing an epoch race is information, not an error.
func (s *Server) handleMembership(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.fleet == nil {
		errorJSON(w, http.StatusNotFound, "not a fleet member")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "read membership body: %v", err)
		return
	}
	var m codec.MemberList
	if binaryBody(r) {
		kind, payload, _, err := codec.Frame(body)
		if err != nil || kind != codec.KindMemberList {
			errorJSON(w, http.StatusBadRequest, "bad membership frame: %v", err)
			return
		}
		dec := binDecPool.Get().(*codec.Decoder)
		defer binDecPool.Put(dec)
		if m, err = dec.DecodeMemberList(payload); err != nil {
			errorJSON(w, http.StatusBadRequest, "bad member list: %v", err)
			return
		}
	} else if err := json.Unmarshal(body, &m); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad membership body: %v", err)
		return
	}
	if m.Epoch == 0 || len(m.Nodes) == 0 {
		errorJSON(w, http.StatusBadRequest, "member list must carry an epoch and nodes")
		return
	}
	applied, _ := s.fleet.ApplyMembership(m)
	if applied {
		s.met.membershipApplied.Add(1)
	}
	writeJSON(w, http.StatusOK, s.membershipResponse(applied, 0))
}

// adminNodeRequest is the POST /v1/join and /v1/leave body.
type adminNodeRequest struct {
	Node string `json:"node"`
}

func (s *Server) decodeAdminNode(w http.ResponseWriter, r *http.Request) (string, bool) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST only")
		return "", false
	}
	if s.fleet == nil {
		errorJSON(w, http.StatusNotFound, "not a fleet member")
		return "", false
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "read body: %v", err)
		return "", false
	}
	var req adminNodeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad body: %v", err)
		return "", false
	}
	if req.Node == "" {
		errorJSON(w, http.StatusBadRequest, "node is required")
		return "", false
	}
	return req.Node, true
}

// handleJoin adds a node to the live membership: this member proposes
// the grown list at the next epoch and broadcasts it fleet-wide. The
// joining daemon itself then bootstraps its owned ranges via
// /v1/transfer — the proposal only changes who owns what.
func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	node, ok := s.decodeAdminNode(w, r)
	if !ok {
		return
	}
	if _, err := s.fleet.ProposeJoin(r.Context(), node); err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "join %s: %v", node, err)
		return
	}
	writeJSON(w, http.StatusOK, s.membershipResponse(true, 0))
}

// handleLeave removes a node from the live membership. When the node
// being removed is this server itself, it first proposes the shrunk
// list (so the fleet routes around it) and then drains every entry it
// holds to the new owners before acknowledging — the clean-decommission
// path. Removing a dead third node skips the drain (there is nothing
// reachable to drain); anti-entropy re-replicates from the survivors.
func (s *Server) handleLeave(w http.ResponseWriter, r *http.Request) {
	node, ok := s.decodeAdminNode(w, r)
	if !ok {
		return
	}
	if _, err := s.fleet.ProposeLeave(r.Context(), node); err != nil {
		errorJSON(w, http.StatusServiceUnavailable, "leave %s: %v", node, err)
		return
	}
	drained := 0
	if node == s.fleet.Self() {
		n, err := s.fleet.Drain(r.Context())
		drained = n
		if err != nil {
			// Partial drain: the proposal already landed, so report what
			// moved and let anti-entropy repair the rest rather than
			// pretending the leave failed.
			s.met.drainErrors.Add(1)
		}
	}
	writeJSON(w, http.StatusOK, s.membershipResponse(true, drained))
}

// handleTransfer serves one shard's entries owned by the requesting
// node — the bootstrap stream. The caller names the epoch its ring came
// from; a mismatch answers 409 with the server's current member list,
// so the caller adopts it and retries under the corrected ring instead
// of pulling ranges that are about to be wrong. Binary responses are
// one CRC-framed KindRangeTransfer, making a torn stream detectable as
// a unit.
func (s *Server) handleTransfer(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.fleet == nil {
		errorJSON(w, http.StatusNotFound, "not a fleet member")
		return
	}
	q := r.URL.Query()
	shard, err := strconv.Atoi(q.Get("shard"))
	if err != nil || shard < 0 || shard >= store.NumShards {
		errorJSON(w, http.StatusBadRequest, "shard must be in [0,%d)", store.NumShards)
		return
	}
	forNode := q.Get("for")
	if forNode == "" {
		errorJSON(w, http.StatusBadRequest, "for is required")
		return
	}
	epoch, err := strconv.ParseUint(q.Get("epoch"), 10, 64)
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "bad epoch %q", q.Get("epoch"))
		return
	}
	if cur := s.fleet.Epoch(); epoch != cur {
		s.met.transferEpochConflicts.Add(1)
		writeJSON(w, http.StatusConflict, s.membershipResponse(false, 0))
		return
	}
	entries := s.fleet.RangeEntries(shard, forNode)
	s.met.transferredOut.Add(uint64(len(entries)))
	if !acceptsBinary(r) {
		writeJSON(w, http.StatusOK, map[string]any{
			"epoch": epoch, "shard": shard, "entries": entries,
		})
		return
	}
	bb := binBufPool.Get().(*binBuf)
	defer binBufPool.Put(bb)
	t := codec.RangeTransfer{Epoch: epoch, Shard: uint64(shard), Entries: make([]codec.Entry, len(entries))}
	for i, e := range entries {
		t.Entries[i] = codec.Entry(e)
	}
	bb.buf = bb.enc.AppendRangeTransfer(bb.buf[:0], &t)
	writeFrame(w, http.StatusOK, bb.buf)
}
