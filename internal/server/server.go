// Package server implements arcsd's HTTP API: best-configuration lookups
// served from a persistent knowledge store (internal/store), ingest of
// search results, and — on a total miss — a bounded server-side Harmony
// search against the simulator, deduplicated so N concurrent clients of
// the same cold key trigger exactly one search.
//
// Endpoints:
//
//	GET  /v1/config?app=&workload=&cap=&region=[&arch=][&fallback=0][&search=0]
//	POST /v1/report   {"key":{...},"config":{...},"perf":N} or an array
//	POST /v1/reports  batched ingest: JSON array or one binary report-batch frame
//	GET  /v1/dump     full entry set with versions, streamed
//	GET  /healthz
//	GET  /metrics     Prometheus text format
//
// Every v1 endpoint content-negotiates: an Accept (responses) or
// Content-Type (request bodies) of application/x-arcs-bin selects the
// binary codec (internal/codec); JSON stays the default and the
// fallback. See wire.go and DESIGN.md §11.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"arcs/internal/codec"
	arcs "arcs/internal/core"
	"arcs/internal/evalcache"
	"arcs/internal/store"
)

const (
	// DefaultMaxConcurrentSearches is the admission-control bound on
	// in-flight server-side searches when Config leaves it zero.
	DefaultMaxConcurrentSearches = 4

	// DefaultSearchTimeout is the per-search deadline when Config leaves
	// it zero.
	DefaultSearchTimeout = 30 * time.Second
)

// Config assembles a Server.
type Config struct {
	// Store is the backing knowledge store (required).
	Store *store.Store
	// Searcher answers total misses; nil selects the simulator-backed
	// SimSearcher with a server-owned eval cache.
	Searcher Searcher
	// SearchBudget caps the evaluations per region of a server-side
	// search; 0 disables server-side searching entirely.
	SearchBudget int
	// SearchParallelism bounds concurrent candidate probes inside one
	// server-side search (the arcsd -search-parallelism flag); 0 selects
	// GOMAXPROCS, 1 evaluates serially. Ignored when Searcher is set.
	SearchParallelism int
	// MaxConcurrentSearches bounds in-flight server-side searches. A cold
	// miss that would need a search beyond the bound is shed with 429 and
	// a Retry-After header instead of queueing unboundedly (joining an
	// already-running search for the same key never needs a slot). Zero
	// selects DefaultMaxConcurrentSearches; negative disables admission
	// control.
	MaxConcurrentSearches int
	// SearchTimeout is the deadline applied around one Searcher.Search
	// call. A searcher that ignores its context is abandoned at the
	// deadline (its admission slot stays held until it actually returns,
	// so hung searches count against MaxConcurrentSearches instead of
	// piling up goroutines). Zero selects DefaultSearchTimeout; negative
	// disables the deadline.
	SearchTimeout time.Duration
}

// Server is the arcsd HTTP handler.
type Server struct {
	st            *store.Store
	searcher      Searcher
	budget        int
	searchTimeout time.Duration
	searchSem     chan struct{} // admission slots; nil = unbounded
	start         time.Time     // for /healthz uptime
	mux           *http.ServeMux
	met           *metrics
	evc           *evalcache.Cache // probe memoisation for the default searcher

	sfMu     sync.Mutex
	inflight map[string]*flight // guarded by sfMu
}

// Sentinel errors for the search admission path.
var (
	errSearchShed    = errors.New("server: search capacity exhausted")
	errSearchTimeout = errors.New("server: search deadline exceeded")
)

// flight is one in-progress server-side search; latecomers for the same
// key wait on done instead of searching again.
type flight struct {
	done chan struct{}
	err  error
}

// New builds a Server; panics on a nil store (a programming error, not a
// runtime condition).
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: nil store")
	}
	s := &Server{
		st:            cfg.Store,
		searcher:      cfg.Searcher,
		budget:        cfg.SearchBudget,
		searchTimeout: cfg.SearchTimeout,
		start:         time.Now(),
		mux:           http.NewServeMux(),
		met:           newMetrics(),
		inflight:      make(map[string]*flight),
	}
	if s.searchTimeout == 0 {
		s.searchTimeout = DefaultSearchTimeout
	}
	maxSearches := cfg.MaxConcurrentSearches
	if maxSearches == 0 {
		maxSearches = DefaultMaxConcurrentSearches
	}
	if maxSearches > 0 {
		s.searchSem = make(chan struct{}, maxSearches)
	}
	if s.searcher == nil {
		s.evc = evalcache.New()
		s.searcher = SimSearcher{Parallelism: cfg.SearchParallelism, Cache: s.evc}
	}
	s.mux.HandleFunc("/v1/config", s.instrument("config", s.handleConfig))
	s.mux.HandleFunc("/v1/report", s.instrument("report", s.handleReport))
	s.mux.HandleFunc("/v1/reports", s.instrument("reports", s.handleReport))
	s.mux.HandleFunc("/v1/dump", s.instrument("dump", s.handleDump))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ConfigResponse is the GET /v1/config payload.
type ConfigResponse struct {
	Key     arcs.HistoryKey   `json:"key"`
	Config  arcs.ConfigValues `json:"config"`
	Perf    float64           `json:"perf"`
	Version uint64            `json:"version"`
	// Source is how the answer was found: "exact", "fallback" (nearest
	// cap) or "searched" (server-side search just ran).
	Source string `json:"source"`
	// CapDistance is the |Δcap| in watts for fallback answers (0 exact).
	CapDistance float64 `json:"cap_distance,omitempty"`
}

// ReportRequest is one POST /v1/report record.
type ReportRequest struct {
	Key  arcs.HistoryKey   `json:"key"`
	Cfg  arcs.ConfigValues `json:"config"`
	Perf float64           `json:"perf"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	key := arcs.HistoryKey{
		App:      q.Get("app"),
		Workload: q.Get("workload"),
		Region:   q.Get("region"),
	}
	if key.App == "" || key.Region == "" {
		errorJSON(w, http.StatusBadRequest, "app and region are required")
		return
	}
	if capStr := q.Get("cap"); capStr != "" {
		capW, err := strconv.ParseFloat(capStr, 64)
		if err != nil || math.IsNaN(capW) || math.IsInf(capW, 0) {
			errorJSON(w, http.StatusBadRequest, "bad cap %q", capStr)
			return
		}
		key.CapW = capW
	}
	allowFallback := q.Get("fallback") != "0"
	allowSearch := q.Get("search") != "0"

	if e, ok := s.st.Get(key); ok {
		s.met.hits.Add(1)
		writeConfig(w, r, ConfigResponse{
			Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version, Source: "exact",
		})
		return
	}
	if allowFallback {
		if e, dist, ok := s.st.GetNearest(key); ok {
			s.met.fallbacks.Add(1)
			writeConfig(w, r, ConfigResponse{
				Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version,
				Source: "fallback", CapDistance: dist,
			})
			return
		}
	}
	// Total miss: optionally search server-side.
	arch := q.Get("arch")
	if allowSearch && s.budget > 0 && arch != "" {
		if err := s.searchOnce(r.Context(), SearchRequest{
			App: key.App, Workload: key.Workload, Arch: arch, CapW: key.CapW, MaxEvals: s.budget,
		}); err != nil {
			switch {
			case errors.Is(err, errSearchShed):
				// Load shedding, not failure: tell the client when to come
				// back instead of queueing it.
				w.Header().Set("Retry-After", "1")
				errorJSON(w, http.StatusTooManyRequests, "server busy: %v", err)
			case errors.Is(err, errSearchTimeout) || errors.Is(err, context.DeadlineExceeded):
				s.met.searchErrors.Add(1)
				errorJSON(w, http.StatusGatewayTimeout, "server-side search: %v", err)
			default:
				s.met.searchErrors.Add(1)
				errorJSON(w, http.StatusBadGateway, "server-side search: %v", err)
			}
			return
		}
		if e, ok := s.st.Get(key); ok {
			writeConfig(w, r, ConfigResponse{
				Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version, Source: "searched",
			})
			return
		}
		// The search ran but this region never executed (wrong region
		// name, or app has fewer regions): an honest miss.
	}
	s.met.misses.Add(1)
	errorJSON(w, http.StatusNotFound, "no configuration for %v", key)
}

// searchOnce runs the bounded server-side search for an app-level context
// with single-flight deduplication: concurrent misses on the same
// app/workload/arch/cap share one search (which covers every region of
// the app, so region-granular callers collapse too). Starting a new
// search requires an admission slot — when all slots are busy the miss
// is shed with errSearchShed (429 upstream) instead of queueing; joining
// an existing flight is always free.
func (s *Server) searchOnce(ctx context.Context, req SearchRequest) error {
	key := fmt.Sprintf("%s|%s|%s|%g", req.App, req.Workload, req.Arch, req.CapW)
	s.sfMu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.sfMu.Unlock()
		s.met.searchDeduped.Add(1)
		select {
		case <-f.done:
			return f.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if s.searchSem != nil {
		select {
		case s.searchSem <- struct{}{}:
		default:
			s.sfMu.Unlock()
			s.met.searchShed.Add(1)
			return fmt.Errorf("%w (%d in flight)", errSearchShed, cap(s.searchSem))
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.sfMu.Unlock()

	results, err := s.runSearch(ctx, req)
	if err == nil {
		s.met.searches.Add(1)
		for _, res := range results {
			s.st.Save(arcs.HistoryKey{
				App: req.App, Workload: req.Workload, CapW: res.CapW, Region: res.Region,
			}, res.Cfg, res.Perf)
		}
	}
	f.err = err
	close(f.done)
	s.sfMu.Lock()
	delete(s.inflight, key)
	s.sfMu.Unlock()
	return err
}

// runSearch executes one search with panic containment and the
// configured deadline. The searcher runs in its own goroutine, detached
// from the first caller's context (the result benefits every waiter and
// the store, so one impatient client must not cancel it for the rest)
// but bounded by SearchTimeout. A searcher that ignores its context is
// abandoned at the deadline; its goroutine keeps its admission slot
// until it actually returns, so a wedged backend saturates the bounded
// semaphore — surfacing as 429s — rather than growing goroutines without
// limit. A panicking searcher is converted into an error plus the
// arcsd_search_panics_total metric instead of killing the daemon.
func (s *Server) runSearch(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	sctx := context.WithoutCancel(ctx)
	cancel := context.CancelFunc(func() {})
	if s.searchTimeout > 0 {
		sctx, cancel = context.WithTimeout(sctx, s.searchTimeout)
	}
	type outcome struct {
		results []SearchResult
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			cancel()
			if s.searchSem != nil {
				<-s.searchSem
			}
			if r := recover(); r != nil {
				s.met.searchPanics.Add(1)
				ch <- outcome{err: fmt.Errorf("server: searcher panicked: %v", r)}
			}
		}()
		results, err := s.searcher.Search(sctx, req)
		ch <- outcome{results: results, err: err}
	}()
	if s.searchTimeout > 0 {
		timer := time.NewTimer(s.searchTimeout + 100*time.Millisecond)
		defer timer.Stop()
		select {
		case o := <-ch:
			return o.results, o.err
		case <-timer.C:
			return nil, fmt.Errorf("%w (%v; searcher ignored its context)", errSearchTimeout, s.searchTimeout)
		}
	}
	o := <-ch
	return o.results, o.err
}

// handleReport serves both /v1/report and /v1/reports: the endpoints
// share semantics (both accept one record or many), the second exists so
// batching clients can probe for it — an old server 404s /v1/reports and
// the client falls back to the array form on /v1/report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	saved, ok := s.ingestReports(w, r)
	if !ok {
		return
	}
	s.met.reported.Add(uint64(saved))
	s.writeAck(w, r, saved)
}

// ingestReports parses one report body — a binary report or report-batch
// frame, a JSON array, or a single JSON object — validates each record
// and saves it. On failure it writes the error response (corrupt binary
// input is a 400, never a panic) and returns ok=false; records saved
// before a mid-batch validation failure stay saved, exactly as the
// pre-batch array path behaved.
func (s *Server) ingestReports(w http.ResponseWriter, r *http.Request) (saved int, ok bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "read report body: %v", err)
		return 0, false
	}
	save := func(key arcs.HistoryKey, cfg arcs.ConfigValues, perf float64) error {
		if key.App == "" || key.Region == "" {
			return fmt.Errorf("report %d: app and region are required", saved)
		}
		if math.IsNaN(perf) || math.IsInf(perf, 0) {
			return fmt.Errorf("report %d: non-finite perf", saved)
		}
		s.st.Save(key, cfg, perf)
		saved++
		return nil
	}
	if binaryBody(r) {
		kind, payload, _, err := codec.Frame(body)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad binary report body: %v", err)
			return 0, false
		}
		dec := binDecPool.Get().(*codec.Decoder)
		defer binDecPool.Put(dec)
		switch kind {
		case codec.KindReport:
			var rep codec.Report
			if err := dec.DecodeReport(payload, &rep); err != nil {
				errorJSON(w, http.StatusBadRequest, "bad binary report: %v", err)
				return 0, false
			}
			if err := save(rep.Key, rep.Cfg, rep.Perf); err != nil {
				errorJSON(w, http.StatusBadRequest, "%v", err)
				return saved, false
			}
		case codec.KindReportBatch:
			if err := dec.DecodeReportBatch(payload, func(rep *codec.Report) error {
				return save(rep.Key, rep.Cfg, rep.Perf)
			}); err != nil {
				errorJSON(w, http.StatusBadRequest, "bad binary report batch: %v", err)
				return saved, false
			}
		default:
			errorJSON(w, http.StatusBadRequest, "unexpected frame kind %#x", kind)
			return 0, false
		}
		return saved, true
	}
	var reports []ReportRequest
	if err := json.Unmarshal(body, &reports); err != nil {
		// One-shot clients may post a single object instead of an array.
		var one ReportRequest
		if err2 := json.Unmarshal(body, &one); err2 != nil {
			errorJSON(w, http.StatusBadRequest, "bad report body: %v", err)
			return 0, false
		}
		reports = []ReportRequest{one}
	}
	for _, rep := range reports {
		if err := save(rep.Key, rep.Cfg, rep.Perf); err != nil {
			errorJSON(w, http.StatusBadRequest, "%v", err)
			return saved, false
		}
	}
	return saved, true
}

// handleDump streams the entry set record by record — a JSON array
// element per entry, or one KindEntry frame per entry under binary —
// instead of materialising one marshalled blob of the whole store, whose
// size scaled with the store and stalled the handler while it built.
func (s *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := s.st.Entries()
	bw := bufio.NewWriterSize(w, 32<<10)
	if acceptsBinary(r) {
		w.Header().Set("Content-Type", codec.ContentType)
		w.WriteHeader(http.StatusOK)
		bb := binBufPool.Get().(*binBuf)
		defer binBufPool.Put(bb)
		for i := range entries {
			ce := codec.Entry(entries[i])
			bb.buf = bb.enc.AppendEntry(bb.buf[:0], &ce)
			if _, err := bw.Write(bb.buf); err != nil {
				return // client went away mid-stream; nothing left to tell it
			}
		}
		_ = bw.Flush()
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = bw.WriteByte('[')
	enc := json.NewEncoder(bw)
	for i := range entries {
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		if err := enc.Encode(entries[i]); err != nil {
			return // client went away mid-stream
		}
	}
	_ = bw.WriteByte(']')
	_ = bw.Flush()
}

// HealthResponse is the GET /healthz payload. The endpoint always
// returns 200 — a degraded store still serves lookups, and liveness
// probes keyed on the status code must not restart a daemon that is
// degraded but useful. status distinguishes "ok" from "degraded"; the
// store fields mirror store.Health.
type HealthResponse struct {
	Status        string  `json:"status"` // "ok" or "degraded"
	Entries       int     `json:"entries"`
	WALBytes      int64   `json:"wal_bytes"`
	SnapshotBytes int64   `json:"snapshot_bytes"`
	WALRecords    int     `json:"wal_records"`
	DroppedSaves  uint64  `json:"dropped_saves,omitempty"`
	StoreError    string  `json:"store_error,omitempty"`
	DegradedCause string  `json:"degraded_cause,omitempty"`
	UptimeSeconds float64 `json:"uptime_seconds"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.st.Health()
	status := "ok"
	if h.Degraded {
		status = "degraded"
	}
	writeJSON(w, http.StatusOK, HealthResponse{
		Status:        status,
		Entries:       h.Entries,
		WALBytes:      h.WALBytes,
		SnapshotBytes: h.SnapshotBytes,
		WALRecords:    h.WALRecords,
		DroppedSaves:  h.DroppedSaves,
		StoreError:    h.LastErr,
		DegradedCause: h.DegradedCause,
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.met.write(w, s.st.Health(), s.evc.Stats())
}

// instrument wraps a handler with request counting, latency tracking,
// and panic recovery: a panicking handler becomes a 500 plus the
// arcsd_handler_panics_total metric, never a dead daemon.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					s.met.handlerPanics.Add(1)
					if !sw.wrote {
						errorJSON(sw, http.StatusInternalServerError, "internal panic: %v", rec)
					}
				}
			}()
			h(sw, r)
		}()
		s.met.observe(endpoint, sw.code, time.Since(start).Seconds())
	}
}

type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}
