// Package server implements arcsd's HTTP API: best-configuration lookups
// served from a persistent knowledge store (internal/store), ingest of
// search results, and — on a total miss — a bounded server-side Harmony
// search against the simulator, deduplicated so N concurrent clients of
// the same cold key trigger exactly one search.
//
// Endpoints:
//
//	GET  /v1/config?app=&workload=&cap=&region=[&arch=][&fallback=0][&search=0]
//	POST /v1/report   {"key":{...},"config":{...},"perf":N} or an array
//	POST /v1/reports  batched ingest: JSON array or one binary report-batch frame
//	GET  /v1/neighbors?app=&workload=&region=&cap=[&max=]   ranked transfer donors
//	GET  /v1/dump     full entry set with versions, streamed
//	GET  /v1/digest?shard=N   per-shard anti-entropy digest
//	POST /v1/merge    intra-fleet replication of already-versioned entries
//	GET  /v1/ping     liveness probe answering the current member list
//	POST /v1/membership   epoch-versioned member-list gossip (fleet only)
//	POST /v1/join     admin: add a node to the live membership
//	POST /v1/leave    admin: remove a node (the node itself drains first)
//	GET  /v1/transfer?shard=N&for=NODE&epoch=E   ring-aware bootstrap stream
//	GET  /healthz
//	GET  /metrics     Prometheus text format
//
// With Config.Fleet set the server is one member of a replicated fleet
// (internal/fleet): reports it does not own are routed to their owners,
// lookups for unowned keys are proxied one hop (the X-Arcs-Fleet-
// Forwarded header stops a second hop), and /v1/digest + /v1/merge
// carry the fleet's replication and anti-entropy traffic.
//
// Every v1 endpoint content-negotiates: an Accept (responses) or
// Content-Type (request bodies) of application/x-arcs-bin selects the
// binary codec (internal/codec); JSON stays the default and the
// fallback. See wire.go and DESIGN.md §11.
package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"arcs/internal/codec"
	arcs "arcs/internal/core"
	"arcs/internal/evalcache"
	"arcs/internal/fleet"
	"arcs/internal/store"
	"arcs/internal/storeclient"
)

const (
	// DefaultMaxConcurrentSearches is the admission-control bound on
	// in-flight server-side searches when Config leaves it zero.
	DefaultMaxConcurrentSearches = 4

	// DefaultSearchTimeout is the per-search deadline when Config leaves
	// it zero.
	DefaultSearchTimeout = 30 * time.Second
)

// Config assembles a Server.
type Config struct {
	// Store is the backing knowledge store (required).
	Store *store.Store
	// Searcher answers total misses; nil selects the simulator-backed
	// SimSearcher with a server-owned eval cache.
	Searcher Searcher
	// SearchBudget caps the evaluations per region of a server-side
	// search; 0 disables server-side searching entirely.
	SearchBudget int
	// SearchParallelism bounds concurrent candidate probes inside one
	// server-side search (the arcsd -search-parallelism flag); 0 selects
	// GOMAXPROCS, 1 evaluates serially. Ignored when Searcher is set.
	SearchParallelism int
	// SearchAlgo selects the server-side search strategy (the arcsd
	// -search-algo flag); AlgoAuto keeps the historical Nelder-Mead.
	// AlgoSurrogate additionally seeds each search from the store's
	// neighbouring contexts (cross-context transfer). Ignored when
	// Searcher is set.
	SearchAlgo arcs.SearchAlgo
	// MaxConcurrentSearches bounds in-flight server-side searches. A cold
	// miss that would need a search beyond the bound is shed with 429 and
	// a Retry-After header instead of queueing unboundedly (joining an
	// already-running search for the same key never needs a slot). Zero
	// selects DefaultMaxConcurrentSearches; negative disables admission
	// control.
	MaxConcurrentSearches int
	// SearchTimeout is the deadline applied around one Searcher.Search
	// call. A searcher that ignores its context is abandoned at the
	// deadline (its admission slot stays held until it actually returns,
	// so hung searches count against MaxConcurrentSearches instead of
	// piling up goroutines). Zero selects DefaultSearchTimeout; negative
	// disables the deadline.
	SearchTimeout time.Duration
	// Fleet makes this server one member of a replicated fleet: reports
	// route through Fleet.Ingest and unowned lookups proxy to their
	// owners. Nil serves standalone (every key owned locally).
	Fleet *fleet.Fleet
	// PeerClient returns the lookup client for one fleet member (nil for
	// an unknown name), used to proxy /v1/config to a key's owners. A
	// function rather than a map because membership is live: joins and
	// leaves change the member set while the server runs, and the
	// registry behind this callback is what tracks them. Ignored when
	// Fleet is nil.
	PeerClient func(name string) *storeclient.Client
}

// Server is the arcsd HTTP handler.
type Server struct {
	st            *store.Store
	searcher      Searcher
	budget        int
	searchTimeout time.Duration
	searchSem     chan struct{} // admission slots; nil = unbounded
	start         time.Time     // for /healthz uptime
	mux           *http.ServeMux
	met           *metrics
	evc           *evalcache.Cache // probe memoisation for the default searcher
	fleet         *fleet.Fleet     // nil when standalone
	peerClient    func(string) *storeclient.Client

	sfMu     sync.Mutex
	inflight map[string]*flight // guarded by sfMu
}

// Sentinel errors for the search admission path.
var (
	errSearchShed    = errors.New("server: search capacity exhausted")
	errSearchTimeout = errors.New("server: search deadline exceeded")
)

// flight is one in-progress server-side search; latecomers for the same
// key wait on done instead of searching again.
type flight struct {
	done chan struct{}
	err  error
}

// New builds a Server; panics on a nil store (a programming error, not a
// runtime condition).
func New(cfg Config) *Server {
	if cfg.Store == nil {
		panic("server: nil store")
	}
	s := &Server{
		st:            cfg.Store,
		searcher:      cfg.Searcher,
		budget:        cfg.SearchBudget,
		searchTimeout: cfg.SearchTimeout,
		start:         time.Now(),
		mux:           http.NewServeMux(),
		met:           newMetrics(),
		inflight:      make(map[string]*flight),
		fleet:         cfg.Fleet,
		peerClient:    cfg.PeerClient,
	}
	if s.peerClient == nil {
		s.peerClient = func(string) *storeclient.Client { return nil }
	}
	if s.searchTimeout == 0 {
		s.searchTimeout = DefaultSearchTimeout
	}
	maxSearches := cfg.MaxConcurrentSearches
	if maxSearches == 0 {
		maxSearches = DefaultMaxConcurrentSearches
	}
	if maxSearches > 0 {
		s.searchSem = make(chan struct{}, maxSearches)
	}
	if s.searcher == nil {
		s.evc = evalcache.New()
		s.searcher = SimSearcher{
			Parallelism: cfg.SearchParallelism,
			Cache:       s.evc,
			Algo:        cfg.SearchAlgo,
			Neighbors:   cfg.Store.LoadNeighbors,
		}
	}
	s.mux.HandleFunc("/v1/config", s.instrument("config", s.handleConfig))
	s.mux.HandleFunc("/v1/neighbors", s.instrument("neighbors", s.handleNeighbors))
	s.mux.HandleFunc("/v1/report", s.instrument("report", s.handleReport))
	s.mux.HandleFunc("/v1/reports", s.instrument("reports", s.handleReport))
	s.mux.HandleFunc("/v1/dump", s.instrument("dump", s.handleDump))
	s.mux.HandleFunc("/v1/digest", s.instrument("digest", s.handleDigest))
	s.mux.HandleFunc("/v1/merge", s.instrument("merge", s.handleMerge))
	s.mux.HandleFunc("/v1/ping", s.instrument("ping", s.handlePing))
	s.mux.HandleFunc("/v1/membership", s.instrument("membership", s.handleMembership))
	s.mux.HandleFunc("/v1/join", s.instrument("join", s.handleJoin))
	s.mux.HandleFunc("/v1/leave", s.instrument("leave", s.handleLeave))
	s.mux.HandleFunc("/v1/transfer", s.instrument("transfer", s.handleTransfer))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// ConfigResponse is the GET /v1/config payload.
type ConfigResponse struct {
	Key     arcs.HistoryKey   `json:"key"`
	Config  arcs.ConfigValues `json:"config"`
	Perf    float64           `json:"perf"`
	Version uint64            `json:"version"`
	// Source is how the answer was found: "exact", "fallback" (nearest
	// cap) or "searched" (server-side search just ran).
	Source string `json:"source"`
	// CapDistance is the |Δcap| in watts for fallback answers (0 exact).
	CapDistance float64 `json:"cap_distance,omitempty"`
}

// ReportRequest is one POST /v1/report record.
type ReportRequest struct {
	Key  arcs.HistoryKey   `json:"key"`
	Cfg  arcs.ConfigValues `json:"config"`
	Perf float64           `json:"perf"`
}

func (s *Server) handleConfig(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	key := arcs.HistoryKey{
		App:      q.Get("app"),
		Workload: q.Get("workload"),
		Region:   q.Get("region"),
	}
	if key.App == "" || key.Region == "" {
		errorJSON(w, http.StatusBadRequest, "app and region are required")
		return
	}
	if capStr := q.Get("cap"); capStr != "" {
		capW, err := strconv.ParseFloat(capStr, 64)
		if err != nil || math.IsNaN(capW) || math.IsInf(capW, 0) {
			errorJSON(w, http.StatusBadRequest, "bad cap %q", capStr)
			return
		}
		key.CapW = capW
	}
	allowFallback := q.Get("fallback") != "0"
	allowSearch := q.Get("search") != "0"

	// Fleet routing: a lookup for a key this node does not own proxies
	// one hop to the owners, who hold the authoritative (replicated)
	// record. Already-forwarded requests are answered locally whatever
	// the ring says — one hop, never a loop. If every owner is
	// unreachable (or has nothing), fall through and serve whatever is
	// known locally: a stray answer beats an outage.
	if s.fleet != nil && r.Header.Get(codec.ForwardedHeader) == "" && !s.fleet.OwnsKey(key.String()) {
		arch := q.Get("arch")
		for _, owner := range s.fleet.Owners(key.String(), nil) {
			peer := s.peerClient(owner)
			if peer == nil {
				continue
			}
			res, err := peer.Lookup(r.Context(), key, storeclient.LookupOpts{
				Arch: arch, Fallback: allowFallback, Search: allowSearch, Forwarded: true,
			})
			if err == nil {
				s.met.fleetLookupFwd.Add(1)
				writeConfig(w, r, ConfigResponse{
					Key: key, Config: res.Config, Perf: res.Perf, Version: res.Version,
					Source: res.Source, CapDistance: res.CapDistance,
				})
				return
			}
			if r.Context().Err() != nil {
				errorJSON(w, http.StatusServiceUnavailable, "lookup cancelled: %v", r.Context().Err())
				return
			}
		}
	}

	if e, ok := s.st.Get(key); ok {
		s.met.hits.Add(1)
		writeConfig(w, r, ConfigResponse{
			Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version, Source: "exact",
		})
		return
	}
	if allowFallback {
		if e, dist, ok := s.st.GetNearest(key); ok {
			s.met.fallbacks.Add(1)
			writeConfig(w, r, ConfigResponse{
				Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version,
				Source: "fallback", CapDistance: dist,
			})
			return
		}
	}
	// Total miss: optionally search server-side.
	arch := q.Get("arch")
	if allowSearch && s.budget > 0 && arch != "" {
		if err := s.searchOnce(r.Context(), SearchRequest{
			App: key.App, Workload: key.Workload, Arch: arch, CapW: key.CapW, MaxEvals: s.budget,
		}); err != nil {
			switch {
			case errors.Is(err, errSearchShed):
				// Load shedding, not failure: tell the client when to come
				// back instead of queueing it.
				w.Header().Set("Retry-After", "1")
				errorJSON(w, http.StatusTooManyRequests, "server busy: %v", err)
			case errors.Is(err, errSearchTimeout) || errors.Is(err, context.DeadlineExceeded):
				s.met.searchErrors.Add(1)
				errorJSON(w, http.StatusGatewayTimeout, "server-side search: %v", err)
			default:
				s.met.searchErrors.Add(1)
				errorJSON(w, http.StatusBadGateway, "server-side search: %v", err)
			}
			return
		}
		if e, ok := s.st.Get(key); ok {
			writeConfig(w, r, ConfigResponse{
				Key: e.Key, Config: e.Cfg, Perf: e.Perf, Version: e.Version, Source: "searched",
			})
			return
		}
		// The search ran but this region never executed (wrong region
		// name, or app has fewer regions): an honest miss.
	}
	s.met.misses.Add(1)
	errorJSON(w, http.StatusNotFound, "no configuration for %v", key)
}

// NeighborResponse is one GET /v1/neighbors record: a stored entry from
// a neighbouring tuned context plus its transfer distance.
type NeighborResponse struct {
	Key     arcs.HistoryKey   `json:"key"`
	Config  arcs.ConfigValues `json:"config"`
	Perf    float64           `json:"perf"`
	Version uint64            `json:"version"`
	Dist    float64           `json:"dist"`
}

// handleNeighbors serves the neighbour scan behind surrogate transfer
// seeding: the stored contexts nearest to the queried key (same app and
// region; nearby caps first, cross-workload entries after), closest
// first. Always JSON — the payload is a handful of records per search
// startup, not a hot path. An empty scan answers 200 with an empty array
// (a context with no neighbours is a normal cold start, not an error).
func (s *Server) handleNeighbors(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	q := r.URL.Query()
	key := arcs.HistoryKey{
		App:      q.Get("app"),
		Workload: q.Get("workload"),
		Region:   q.Get("region"),
	}
	if key.App == "" || key.Region == "" {
		errorJSON(w, http.StatusBadRequest, "app and region are required")
		return
	}
	if capStr := q.Get("cap"); capStr != "" {
		capW, err := strconv.ParseFloat(capStr, 64)
		if err != nil || math.IsNaN(capW) || math.IsInf(capW, 0) {
			errorJSON(w, http.StatusBadRequest, "bad cap %q", capStr)
			return
		}
		key.CapW = capW
	}
	max := arcs.DefaultTransferSeeds
	if maxStr := q.Get("max"); maxStr != "" {
		m, err := strconv.Atoi(maxStr)
		if err != nil || m < 1 || m > 256 {
			errorJSON(w, http.StatusBadRequest, "max must be in [1,256]")
			return
		}
		max = m
	}
	ns := s.st.Neighbors(key, max)
	out := make([]NeighborResponse, len(ns))
	for i, n := range ns {
		out[i] = NeighborResponse{
			Key: n.Entry.Key, Config: n.Entry.Cfg, Perf: n.Entry.Perf,
			Version: n.Entry.Version, Dist: n.Dist,
		}
	}
	s.met.neighborsServed.Add(uint64(len(out)))
	writeJSON(w, http.StatusOK, out)
}

// searchOnce runs the bounded server-side search for an app-level context
// with single-flight deduplication: concurrent misses on the same
// app/workload/arch/cap share one search (which covers every region of
// the app, so region-granular callers collapse too). Starting a new
// search requires an admission slot — when all slots are busy the miss
// is shed with errSearchShed (429 upstream) instead of queueing; joining
// an existing flight is always free.
func (s *Server) searchOnce(ctx context.Context, req SearchRequest) error {
	key := fmt.Sprintf("%s|%s|%s|%g", req.App, req.Workload, req.Arch, req.CapW)
	s.sfMu.Lock()
	if f, ok := s.inflight[key]; ok {
		s.sfMu.Unlock()
		s.met.searchDeduped.Add(1)
		select {
		case <-f.done:
			return f.err
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if s.searchSem != nil {
		select {
		case s.searchSem <- struct{}{}:
		default:
			s.sfMu.Unlock()
			s.met.searchShed.Add(1)
			return fmt.Errorf("%w (%d in flight)", errSearchShed, cap(s.searchSem))
		}
	}
	f := &flight{done: make(chan struct{})}
	s.inflight[key] = f
	s.sfMu.Unlock()

	results, err := s.runSearch(ctx, req)
	if err == nil {
		s.met.searches.Add(1)
		for _, res := range results {
			s.st.Save(arcs.HistoryKey{
				App: req.App, Workload: req.Workload, CapW: res.CapW, Region: res.Region,
			}, res.Cfg, res.Perf)
		}
	}
	f.err = err
	close(f.done)
	s.sfMu.Lock()
	delete(s.inflight, key)
	s.sfMu.Unlock()
	return err
}

// runSearch executes one search with panic containment and the
// configured deadline. The searcher runs in its own goroutine, detached
// from the first caller's context (the result benefits every waiter and
// the store, so one impatient client must not cancel it for the rest)
// but bounded by SearchTimeout. A searcher that ignores its context is
// abandoned at the deadline; its goroutine keeps its admission slot
// until it actually returns, so a wedged backend saturates the bounded
// semaphore — surfacing as 429s — rather than growing goroutines without
// limit. A panicking searcher is converted into an error plus the
// arcsd_search_panics_total metric instead of killing the daemon.
func (s *Server) runSearch(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	sctx := context.WithoutCancel(ctx)
	cancel := context.CancelFunc(func() {})
	if s.searchTimeout > 0 {
		sctx, cancel = context.WithTimeout(sctx, s.searchTimeout)
	}
	type outcome struct {
		results []SearchResult
		err     error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			cancel()
			if s.searchSem != nil {
				<-s.searchSem
			}
			if r := recover(); r != nil {
				s.met.searchPanics.Add(1)
				ch <- outcome{err: fmt.Errorf("server: searcher panicked: %v", r)}
			}
		}()
		results, err := s.searcher.Search(sctx, req)
		ch <- outcome{results: results, err: err}
	}()
	if s.searchTimeout > 0 {
		timer := time.NewTimer(s.searchTimeout + 100*time.Millisecond)
		defer timer.Stop()
		select {
		case o := <-ch:
			return o.results, o.err
		case <-timer.C:
			return nil, fmt.Errorf("%w (%v; searcher ignored its context)", errSearchTimeout, s.searchTimeout)
		}
	}
	o := <-ch
	return o.results, o.err
}

// handleReport serves both /v1/report and /v1/reports: the endpoints
// share semantics (both accept one record or many), the second exists so
// batching clients can probe for it — an old server 404s /v1/reports and
// the client falls back to the array form on /v1/report.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	saved, ok := s.ingestReports(w, r)
	if !ok {
		return
	}
	s.met.reported.Add(uint64(saved))
	s.writeAck(w, r, saved)
}

// ingestReports parses one report body — a binary report or report-batch
// frame, a JSON array, or a single JSON object — validates each record
// and applies the batch: standalone servers Save locally; fleet members
// route through fleet.Ingest (local save + replication for owned keys,
// owner forwarding for the rest; a forwarded request is always applied
// locally). On failure it writes the error response (corrupt binary
// input is a 400, never a panic) and returns ok=false; records
// validated before a mid-batch failure are still applied, exactly as
// the pre-batch array path behaved.
func (s *Server) ingestReports(w http.ResponseWriter, r *http.Request) (saved int, ok bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "read report body: %v", err)
		return 0, false
	}
	var valid []codec.Report
	collect := func(key arcs.HistoryKey, cfg arcs.ConfigValues, perf float64) error {
		if key.App == "" || key.Region == "" {
			return fmt.Errorf("report %d: app and region are required", len(valid))
		}
		if math.IsNaN(perf) || math.IsInf(perf, 0) {
			return fmt.Errorf("report %d: non-finite perf", len(valid))
		}
		valid = append(valid, codec.Report{Key: key, Cfg: cfg, Perf: perf})
		return nil
	}
	var badInput error
	if binaryBody(r) {
		kind, payload, _, err := codec.Frame(body)
		if err != nil {
			errorJSON(w, http.StatusBadRequest, "bad binary report body: %v", err)
			return 0, false
		}
		dec := binDecPool.Get().(*codec.Decoder)
		defer binDecPool.Put(dec)
		switch kind {
		case codec.KindReport:
			var rep codec.Report
			if err := dec.DecodeReport(payload, &rep); err != nil {
				errorJSON(w, http.StatusBadRequest, "bad binary report: %v", err)
				return 0, false
			}
			badInput = collect(rep.Key, rep.Cfg, rep.Perf)
		case codec.KindReportBatch:
			if err := dec.DecodeReportBatch(payload, func(rep *codec.Report) error {
				return collect(rep.Key, rep.Cfg, rep.Perf)
			}); err != nil {
				if badInput == nil {
					badInput = fmt.Errorf("bad binary report batch: %v", err)
				}
			}
		default:
			errorJSON(w, http.StatusBadRequest, "unexpected frame kind %#x", kind)
			return 0, false
		}
	} else {
		var reports []ReportRequest
		if err := json.Unmarshal(body, &reports); err != nil {
			// One-shot clients may post a single object instead of an array.
			var one ReportRequest
			if err2 := json.Unmarshal(body, &one); err2 != nil {
				errorJSON(w, http.StatusBadRequest, "bad report body: %v", err)
				return 0, false
			}
			reports = []ReportRequest{one}
		}
		for _, rep := range reports {
			if badInput = collect(rep.Key, rep.Cfg, rep.Perf); badInput != nil {
				break
			}
		}
	}
	saved = s.applyReports(r, valid)
	if badInput != nil {
		errorJSON(w, http.StatusBadRequest, "%v", badInput)
		return saved, false
	}
	return saved, true
}

// applyReports lands a validated batch: via the fleet when configured,
// plain Saves otherwise.
func (s *Server) applyReports(r *http.Request, reports []codec.Report) int {
	if len(reports) == 0 {
		return 0
	}
	if s.fleet != nil {
		forwarded := r.Header.Get(codec.ForwardedHeader) != ""
		return s.fleet.Ingest(r.Context(), reports, forwarded)
	}
	for _, rep := range reports {
		s.st.Save(rep.Key, rep.Cfg, rep.Perf)
	}
	return len(reports)
}

// handleDigest serves the per-shard anti-entropy summary (fleet peers'
// sweep traffic, and a cheap standalone divergence probe). Registered
// unconditionally: a digest of the local store needs no fleet.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	shard, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil || shard < 0 || shard >= store.NumShards {
		errorJSON(w, http.StatusBadRequest, "shard must be in [0,%d)", store.NumShards)
		return
	}
	d := fleet.BuildDigest(s.st, shard)
	if !acceptsBinary(r) {
		writeJSON(w, http.StatusOK, d)
		return
	}
	bb := binBufPool.Get().(*binBuf)
	defer binBufPool.Put(bb)
	bb.buf = bb.enc.AppendDigest(bb.buf[:0], &d)
	writeFrame(w, http.StatusOK, bb.buf)
}

// handleMerge ingests intra-fleet replication: already-versioned
// entries applied under store.Supersedes, never re-replicated (the
// authoring owner fans out itself). The binary body is a concatenation
// of KindEntry frames — the WAL record format — JSON a []store.Entry.
// Works standalone too (direct store merges, restore tooling).
func (s *Server) handleMerge(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err != nil {
		errorJSON(w, http.StatusBadRequest, "read merge body: %v", err)
		return
	}
	var entries []store.Entry
	if binaryBody(r) {
		dec := binDecPool.Get().(*codec.Decoder)
		defer binDecPool.Put(dec)
		for pos := 0; pos < len(body); {
			kind, payload, n, err := codec.Frame(body[pos:])
			if err != nil || kind != codec.KindEntry {
				errorJSON(w, http.StatusBadRequest, "bad merge frame at offset %d: %v", pos, err)
				return
			}
			var ce codec.Entry
			if err := dec.DecodeEntry(payload, &ce); err != nil {
				errorJSON(w, http.StatusBadRequest, "bad merge entry at offset %d: %v", pos, err)
				return
			}
			entries = append(entries, store.Entry(ce))
			pos += n
		}
	} else if err := json.Unmarshal(body, &entries); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad merge body: %v", err)
		return
	}
	for i := range entries {
		if entries[i].Key.App == "" || entries[i].Key.Region == "" {
			errorJSON(w, http.StatusBadRequest, "merge entry %d: app and region are required", i)
			return
		}
		if math.IsNaN(entries[i].Perf) || math.IsInf(entries[i].Perf, 0) {
			errorJSON(w, http.StatusBadRequest, "merge entry %d: non-finite perf", i)
			return
		}
	}
	var merged int
	if s.fleet != nil {
		merged = s.fleet.MergeLocal(entries)
	} else {
		for _, e := range entries {
			if s.st.Merge(e) {
				merged++
			}
		}
	}
	s.met.merged.Add(uint64(merged))
	s.writeAck(w, r, merged)
}

// handleDump streams the entry set record by record — a JSON array
// element per entry, or one KindEntry frame per entry under binary —
// instead of materialising one marshalled blob of the whole store, whose
// size scaled with the store and stalled the handler while it built.
func (s *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	entries := s.st.Entries()
	bw := bufio.NewWriterSize(w, 32<<10)
	if acceptsBinary(r) {
		w.Header().Set("Content-Type", codec.ContentType)
		w.WriteHeader(http.StatusOK)
		bb := binBufPool.Get().(*binBuf)
		defer binBufPool.Put(bb)
		for i := range entries {
			ce := codec.Entry(entries[i])
			bb.buf = bb.enc.AppendEntry(bb.buf[:0], &ce)
			if _, err := bw.Write(bb.buf); err != nil {
				return // client went away mid-stream; nothing left to tell it
			}
		}
		_ = bw.Flush()
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_ = bw.WriteByte('[')
	enc := json.NewEncoder(bw)
	for i := range entries {
		if i > 0 {
			_ = bw.WriteByte(',')
		}
		if err := enc.Encode(entries[i]); err != nil {
			return // client went away mid-stream
		}
	}
	_ = bw.WriteByte(']')
	_ = bw.Flush()
}

// HealthResponse is the GET /healthz payload. The endpoint always
// returns 200 — a degraded store still serves lookups, and liveness
// probes keyed on the status code must not restart a daemon that is
// degraded but useful. status distinguishes "ok" from "degraded"; the
// store fields mirror store.Health.
type HealthResponse struct {
	Status        string       `json:"status"` // "ok" or "degraded"
	Entries       int          `json:"entries"`
	WALBytes      int64        `json:"wal_bytes"`
	SnapshotBytes int64        `json:"snapshot_bytes"`
	WALRecords    int          `json:"wal_records"`
	DroppedSaves  uint64       `json:"dropped_saves,omitempty"`
	StoreError    string       `json:"store_error,omitempty"`
	DegradedCause string       `json:"degraded_cause,omitempty"`
	UptimeSeconds float64      `json:"uptime_seconds"`
	Fleet         *FleetHealth `json:"fleet,omitempty"`
}

// FleetHealth is the fleet section of /healthz: identity, membership,
// and the live replication counters, so an operator can see from any
// one node whether replication and anti-entropy are keeping up.
type FleetHealth struct {
	Self       string   `json:"self"`
	Epoch      uint64   `json:"epoch"`
	Nodes      []string `json:"nodes"`
	Replicas   int      `json:"replicas"`
	OwnedShare float64  `json:"owned_share"`
	// Peers maps each peer to its failure-detector state ("alive",
	// "suspect" or "dead").
	Peers map[string]string `json:"peers,omitempty"`
	Stats fleet.Stats       `json:"stats"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := s.st.Health()
	status := "ok"
	if h.Degraded {
		status = "degraded"
	}
	resp := HealthResponse{
		Status:        status,
		Entries:       h.Entries,
		WALBytes:      h.WALBytes,
		SnapshotBytes: h.SnapshotBytes,
		WALRecords:    h.WALRecords,
		DroppedSaves:  h.DroppedSaves,
		StoreError:    h.LastErr,
		DegradedCause: h.DegradedCause,
		UptimeSeconds: time.Since(s.start).Seconds(),
	}
	if s.fleet != nil {
		resp.Fleet = &FleetHealth{
			Self:       s.fleet.Self(),
			Epoch:      s.fleet.Epoch(),
			Nodes:      s.fleet.Membership().Nodes,
			Replicas:   s.fleet.Replicas(),
			OwnedShare: s.fleet.Ring().OwnedShare(s.fleet.Self()),
			Peers:      s.fleet.Detector().States(),
			Stats:      s.fleet.Stats(),
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var fl *fleetMetrics
	if s.fleet != nil {
		fl = &fleetMetrics{
			stats:      s.fleet.Stats(),
			nodes:      len(s.fleet.Ring().Nodes()),
			replicas:   s.fleet.Replicas(),
			ownedShare: s.fleet.Ring().OwnedShare(s.fleet.Self()),
		}
	}
	s.met.write(w, s.st.Health(), s.evc.Stats(), fl)
}

// instrument wraps a handler with request counting, latency tracking,
// and panic recovery: a panicking handler becomes a 500 plus the
// arcsd_handler_panics_total metric, never a dead daemon.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		if s.fleet != nil {
			// Every response advertises the membership epoch, so clients
			// notice a join/leave from ordinary traffic and refresh their
			// ring view without polling. Stamped at first write, not here:
			// a join/leave handler bumps the epoch mid-request and must
			// advertise the epoch it produced, not the one it started on.
			sw.beforeWrite = func() {
				sw.Header().Set(codec.EpochHeader, strconv.FormatUint(s.fleet.Epoch(), 10))
			}
		}
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					s.met.handlerPanics.Add(1)
					if !sw.wrote {
						errorJSON(sw, http.StatusInternalServerError, "internal panic: %v", rec)
					}
				}
			}()
			h(sw, r)
		}()
		s.met.observe(endpoint, sw.code, time.Since(start).Seconds())
	}
}

type statusWriter struct {
	http.ResponseWriter
	code        int
	wrote       bool
	beforeWrite func() // runs once, before the first header/body write
}

func (w *statusWriter) start() {
	if !w.wrote && w.beforeWrite != nil {
		w.beforeWrite()
	}
	w.wrote = true
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.start()
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.start()
	return w.ResponseWriter.Write(p)
}
