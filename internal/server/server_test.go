package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	arcs "arcs/internal/core"
	"arcs/internal/store"
)

func newTestServer(t *testing.T, cfg Config) *httptest.Server {
	t.Helper()
	if cfg.Store == nil {
		st, err := store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		cfg.Store = st
	}
	ts := httptest.NewServer(New(cfg))
	t.Cleanup(ts.Close)
	return ts
}

func postReport(t *testing.T, base string, reports []ReportRequest) map[string]any {
	t.Helper()
	body, _ := json.Marshal(reports)
	resp, err := http.Post(base+"/v1/report", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("report status %d: %s", resp.StatusCode, b)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func getConfig(t *testing.T, base string, query string) (ConfigResponse, int) {
	t.Helper()
	resp, err := http.Get(base + "/v1/config?" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr ConfigResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
			t.Fatal(err)
		}
	}
	return cr, resp.StatusCode
}

func TestLookupExactFallbackMiss(t *testing.T) {
	ts := newTestServer(t, Config{})
	k := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "x_solve"}
	cfg := arcs.ConfigValues{Threads: 16, Chunk: 8}
	postReport(t, ts.URL, []ReportRequest{{Key: k, Cfg: cfg, Perf: 1.5}})

	// Exact.
	cr, code := getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=x_solve")
	if code != 200 || cr.Source != "exact" || cr.Config != cfg || cr.Version != 1 {
		t.Errorf("exact lookup = %+v (code %d)", cr, code)
	}
	// Nearest-cap fallback with distance annotation.
	cr, code = getConfig(t, ts.URL, "app=SP&workload=B&cap=80&region=x_solve")
	if code != 200 || cr.Source != "fallback" || cr.CapDistance != 10 || cr.Config != cfg {
		t.Errorf("fallback lookup = %+v (code %d)", cr, code)
	}
	// Fallback disabled.
	if _, code = getConfig(t, ts.URL, "app=SP&workload=B&cap=80&region=x_solve&fallback=0"); code != 404 {
		t.Errorf("fallback=0 should miss, got %d", code)
	}
	// Total miss (different region).
	if _, code = getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=nope"); code != 404 {
		t.Errorf("miss should 404, got %d", code)
	}
	// Bad requests.
	if _, code = getConfig(t, ts.URL, "workload=B&cap=70&region=x"); code != 400 {
		t.Errorf("missing app should 400, got %d", code)
	}
	if _, code = getConfig(t, ts.URL, "app=SP&workload=B&cap=wat&region=x"); code != 400 {
		t.Errorf("bad cap should 400, got %d", code)
	}
}

func TestReportValidationAndKeepBest(t *testing.T) {
	ts := newTestServer(t, Config{})
	k := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "r"}
	postReport(t, ts.URL, []ReportRequest{{Key: k, Cfg: arcs.ConfigValues{Threads: 8}, Perf: 2.0}})
	// Worse report is ignored; better replaces.
	postReport(t, ts.URL, []ReportRequest{
		{Key: k, Cfg: arcs.ConfigValues{Threads: 2}, Perf: 5.0},
		{Key: k, Cfg: arcs.ConfigValues{Threads: 24}, Perf: 1.0},
	})
	cr, _ := getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=r")
	if cr.Config.Threads != 24 || cr.Perf != 1.0 || cr.Version != 2 {
		t.Errorf("keep-best over the wire: %+v", cr)
	}

	// A single object body works too.
	one, _ := json.Marshal(ReportRequest{Key: arcs.HistoryKey{App: "BT", Workload: "B", CapW: 70, Region: "r2"}, Perf: 1})
	resp, err := http.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(one))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("single-object report status %d", resp.StatusCode)
	}

	for _, bad := range []string{
		`{"key":{"app":"","region":"r"},"perf":1}`,
		`[{"key":{"app":"A","region":"r"},"perf":"x"}]`,
		`not json`,
	} {
		resp, err := http.Post(ts.URL+"/v1/report", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("bad report %q: status %d, want 400", bad, resp.StatusCode)
		}
	}
}

func TestDumpHealthzMetrics(t *testing.T) {
	ts := newTestServer(t, Config{})
	postReport(t, ts.URL, []ReportRequest{
		{Key: arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "r"}, Perf: 1},
	})
	getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=r")
	getConfig(t, ts.URL, "app=SP&workload=B&cap=99&region=r")

	resp, err := http.Get(ts.URL + "/v1/dump")
	if err != nil {
		t.Fatal(err)
	}
	var entries []store.Entry
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(entries) != 1 || entries[0].Key.Region != "r" {
		t.Errorf("dump = %+v", entries)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	err = json.NewDecoder(resp.Body).Decode(&hr)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK || hr.Status != "ok" || hr.Entries != 1 {
		t.Errorf("healthz = %+v (err %v, code %d)", hr, err, resp.StatusCode)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		`arcsd_requests_total{endpoint="config",code="200"} 2`,
		`arcsd_requests_total{endpoint="report",code="200"} 1`,
		"arcsd_lookup_hits_total 1",
		"arcsd_lookup_fallbacks_total 1",
		"arcsd_store_entries 1",
		`arcsd_request_seconds_count{endpoint="config"} 2`,
	} {
		if !strings.Contains(string(mb), want) {
			t.Errorf("metrics missing %q:\n%s", want, mb)
		}
	}
}

// countingSearcher blocks until released, counting invocations: the
// single-flight layer must collapse concurrent cold-key lookups to one.
type countingSearcher struct {
	mu      sync.Mutex
	calls   int
	started chan struct{} // closed when the first search begins
	release chan struct{} // search returns when closed
}

func (c *countingSearcher) Search(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	c.mu.Lock()
	c.calls++
	if c.calls == 1 {
		close(c.started)
	}
	c.mu.Unlock()
	<-c.release
	return []SearchResult{{
		Region: "r", CapW: req.CapW,
		Cfg:  arcs.ConfigValues{Threads: 16},
		Perf: 1.0,
	}}, nil
}

func TestSingleFlightCollapsesColdKeySearches(t *testing.T) {
	cs := &countingSearcher{started: make(chan struct{}), release: make(chan struct{})}
	ts := newTestServer(t, Config{Searcher: cs, SearchBudget: 10})

	const clients = 16
	var wg sync.WaitGroup
	var ok32 atomic.Int64
	results := make([]ConfigResponse, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Get(ts.URL + "/v1/config?app=SP&workload=B&cap=70&region=r&arch=crill")
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != 200 {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			ok32.Add(1)
			errs[i] = json.NewDecoder(resp.Body).Decode(&results[i])
		}(i)
	}
	// Release the searcher once the first call is in flight; every other
	// client is either queued behind the flight or will hit the store.
	<-cs.started
	close(cs.release)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	if got := ok32.Load(); got != clients {
		t.Fatalf("%d/%d clients served", got, clients)
	}
	cs.mu.Lock()
	calls := cs.calls
	cs.mu.Unlock()
	if calls != 1 {
		t.Errorf("single-flight failed: %d searches for one cold key", calls)
	}
	for i, r := range results {
		if r.Config.Threads != 16 {
			t.Errorf("client %d got %+v", i, r)
		}
		if r.Source != "searched" && r.Source != "exact" {
			t.Errorf("client %d source = %q", i, r.Source)
		}
	}
}

type errSearcher struct{}

func (errSearcher) Search(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	return nil, fmt.Errorf("boom")
}

func TestSearchDisabledAndFailed(t *testing.T) {
	// Budget 0: no search, plain 404.
	ts := newTestServer(t, Config{Searcher: errSearcher{}})
	if _, code := getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=r&arch=crill"); code != 404 {
		t.Errorf("budget=0 should 404, got %d", code)
	}
	// search=0 opts out even with budget.
	ts2 := newTestServer(t, Config{Searcher: errSearcher{}, SearchBudget: 5})
	if _, code := getConfig(t, ts2.URL, "app=SP&workload=B&cap=70&region=r&arch=crill&search=0"); code != 404 {
		t.Errorf("search=0 should 404, got %d", code)
	}
	// No arch: cannot search, plain 404.
	if _, code := getConfig(t, ts2.URL, "app=SP&workload=B&cap=70&region=r"); code != 404 {
		t.Errorf("no arch should 404, got %d", code)
	}
	// Failing searcher: 502.
	if _, code := getConfig(t, ts2.URL, "app=SP&workload=B&cap=70&region=r&arch=crill"); code != 502 {
		t.Errorf("failed search should 502, got %d", code)
	}
}

// TestSimSearcherEndToEnd: a real (tiny) simulator search populates the
// store and answers the lookup.
func TestSimSearcherEndToEnd(t *testing.T) {
	ts := newTestServer(t, Config{SearchBudget: 6})
	cr, code := getConfig(t, ts.URL, "app=SYNTH&workload=3&cap=70&region=synth_00&arch=crill")
	if code != 200 {
		t.Fatalf("searched lookup failed: %d", code)
	}
	if cr.Source != "searched" {
		t.Errorf("source = %q, want searched", cr.Source)
	}
	// The search covered every region of the app, so a sibling region is
	// now an exact hit.
	resp, err := http.Get(ts.URL + "/v1/dump")
	if err != nil {
		t.Fatal(err)
	}
	var entries []store.Entry
	json.NewDecoder(resp.Body).Decode(&entries)
	resp.Body.Close()
	if len(entries) < 1 {
		t.Errorf("search stored nothing")
	}
	// Unknown app surfaces as a search error.
	if _, code := getConfig(t, ts.URL, "app=NOPE&workload=B&cap=70&region=r&arch=crill"); code != 502 {
		t.Errorf("unknown app should 502, got %d", code)
	}
}

// TestConcurrentServing hammers lookup/report on overlapping keys from 32
// goroutines (run under -race in CI) and checks consistency after.
func TestConcurrentServing(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{SnapshotEvery: 32})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := newTestServer(t, Config{Store: st})

	const goroutines = 32
	const perG = 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	client := ts.Client()
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				region := fmt.Sprintf("r%d", i%4)
				k := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: region}
				perf := float64(1 + (g*perG+i)%89)
				body, _ := json.Marshal([]ReportRequest{{Key: k, Cfg: arcs.ConfigValues{Threads: 2 + g%30}, Perf: perf}})
				resp, err := client.Post(ts.URL+"/v1/report", "application/json", bytes.NewReader(body))
				if err != nil || resp.StatusCode != 200 {
					failures.Add(1)
				}
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				resp, err = client.Get(ts.URL + "/v1/config?app=SP&workload=B&cap=75&region=" + region)
				if err != nil || resp.StatusCode != 200 {
					failures.Add(1)
				}
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d request failures under concurrency", n)
	}
	if st.Len() != 4 {
		t.Errorf("store has %d keys, want 4", st.Len())
	}
	if err := st.Err(); err != nil {
		t.Errorf("store error after hammer: %v", err)
	}
}

// scrapeMetric reads one un-labelled metric value from /metrics.
func scrapeMetric(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, name+" %g", &v); n == 1 && !strings.HasPrefix(line, "#") {
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, body)
	return 0
}

// TestSearchEvalCacheWarm: a repeated server-side search over the same
// context is served entirely by the eval cache — the fresh-probe (miss)
// counter does not move while the hit counter does. The search repeats
// because the requested region never executes, so the store stays cold.
func TestSearchEvalCacheWarm(t *testing.T) {
	ts := newTestServer(t, Config{SearchBudget: 6, SearchParallelism: 4})

	if _, code := getConfig(t, ts.URL, "app=SYNTH&workload=3&cap=70&region=no_such_region&arch=crill"); code != 404 {
		t.Fatalf("ghost region lookup should 404 after searching, got %d", code)
	}
	coldMisses := scrapeMetric(t, ts.URL, "arcsd_evalcache_misses_total")
	coldHits := scrapeMetric(t, ts.URL, "arcsd_evalcache_hits_total")
	if coldMisses == 0 {
		t.Fatal("cold search recorded no cache misses")
	}
	if entries := scrapeMetric(t, ts.URL, "arcsd_evalcache_entries"); entries == 0 {
		t.Fatal("cold search cached nothing")
	}

	if _, code := getConfig(t, ts.URL, "app=SYNTH&workload=3&cap=70&region=no_such_region&arch=crill"); code != 404 {
		t.Fatalf("second lookup should 404, got %d", code)
	}
	warmMisses := scrapeMetric(t, ts.URL, "arcsd_evalcache_misses_total")
	warmHits := scrapeMetric(t, ts.URL, "arcsd_evalcache_hits_total")
	if warmMisses != coldMisses {
		t.Errorf("repeat search did %g fresh probes, want 0", warmMisses-coldMisses)
	}
	if warmHits <= coldHits {
		t.Error("repeat search never hit the eval cache")
	}
	// A different cap is a different context: fresh probes again.
	getConfig(t, ts.URL, "app=SYNTH&workload=3&cap=55&region=no_such_region&arch=crill")
	if m := scrapeMetric(t, ts.URL, "arcsd_evalcache_misses_total"); m <= warmMisses {
		t.Error("different cap reused cache entries; capW must be part of the key")
	}
	if inflight := scrapeMetric(t, ts.URL, "arcsd_evalcache_inflight"); inflight != 0 {
		t.Errorf("inflight gauge = %g at rest", inflight)
	}
}
