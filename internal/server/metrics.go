package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"arcs/internal/evalcache"
	"arcs/internal/fleet"
	"arcs/internal/store"
)

// reqKey labels one requests-counter series.
type reqKey struct {
	endpoint string
	code     int
}

// metrics is a dependency-free Prometheus-text exporter: request counts
// and latency sums per endpoint/status, lookup outcome counters, and the
// store size gauge.
type metrics struct {
	hits, misses, fallbacks  atomic.Uint64
	searches, searchDeduped  atomic.Uint64
	searchErrors, reported   atomic.Uint64
	searchShed, searchPanics atomic.Uint64
	handlerPanics            atomic.Uint64
	merged                   atomic.Uint64
	fleetLookupFwd           atomic.Uint64
	neighborsServed          atomic.Uint64
	membershipApplied        atomic.Uint64
	drainErrors              atomic.Uint64
	transferEpochConflicts   atomic.Uint64
	transferredOut           atomic.Uint64

	mu       sync.Mutex
	requests map[reqKey]uint64  // guarded by mu
	latSum   map[string]float64 // endpoint -> seconds; guarded by mu
	latCount map[string]uint64  // endpoint -> observations; guarded by mu
}

func newMetrics() *metrics {
	return &metrics{
		requests: make(map[reqKey]uint64),
		latSum:   make(map[string]float64),
		latCount: make(map[string]uint64),
	}
}

func (m *metrics) observe(endpoint string, code int, seconds float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.requests[reqKey{endpoint, code}]++
	m.latSum[endpoint] += seconds
	m.latCount[endpoint]++
}

// fleetMetrics carries the fleet-scoped series into write; nil means
// the server runs standalone and the fleet section is omitted.
type fleetMetrics struct {
	stats      fleet.Stats
	nodes      int
	replicas   int
	ownedShare float64
}

// write renders the Prometheus text exposition format, deterministically
// ordered so scrapes and tests are stable.
func (m *metrics) write(w io.Writer, health store.Health, evc evalcache.Stats, fl *fleetMetrics) {
	fmt.Fprintln(w, "# HELP arcsd_requests_total HTTP requests by endpoint and status code.")
	fmt.Fprintln(w, "# TYPE arcsd_requests_total counter")
	m.mu.Lock()
	reqKeys := make([]reqKey, 0, len(m.requests))
	for k := range m.requests {
		reqKeys = append(reqKeys, k)
	}
	sort.Slice(reqKeys, func(i, j int) bool {
		if reqKeys[i].endpoint != reqKeys[j].endpoint {
			return reqKeys[i].endpoint < reqKeys[j].endpoint
		}
		return reqKeys[i].code < reqKeys[j].code
	})
	for _, k := range reqKeys {
		fmt.Fprintf(w, "arcsd_requests_total{endpoint=%q,code=\"%d\"} %d\n", k.endpoint, k.code, m.requests[k])
	}
	fmt.Fprintln(w, "# HELP arcsd_request_seconds Cumulative request latency by endpoint.")
	fmt.Fprintln(w, "# TYPE arcsd_request_seconds summary")
	latKeys := make([]string, 0, len(m.latCount))
	for k := range m.latCount {
		latKeys = append(latKeys, k)
	}
	sort.Strings(latKeys)
	for _, k := range latKeys {
		fmt.Fprintf(w, "arcsd_request_seconds_sum{endpoint=%q} %g\n", k, m.latSum[k])
		fmt.Fprintf(w, "arcsd_request_seconds_count{endpoint=%q} %d\n", k, m.latCount[k])
	}
	m.mu.Unlock()

	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("arcsd_lookup_hits_total", "Exact-key lookup hits.", m.hits.Load())
	counter("arcsd_lookup_fallbacks_total", "Lookups answered by the nearest-cap fallback.", m.fallbacks.Load())
	counter("arcsd_lookup_misses_total", "Lookups with no answer at all.", m.misses.Load())
	counter("arcsd_searches_total", "Server-side searches executed.", m.searches.Load())
	counter("arcsd_search_dedup_total", "Searches avoided by single-flight deduplication.", m.searchDeduped.Load())
	counter("arcsd_search_errors_total", "Server-side searches that failed.", m.searchErrors.Load())
	counter("arcsd_search_shed_total", "Search requests shed by admission control (429).", m.searchShed.Load())
	counter("arcsd_search_panics_total", "Searcher panics contained by the recovery wrapper.", m.searchPanics.Load())
	counter("arcsd_handler_panics_total", "HTTP handler panics converted to 500s.", m.handlerPanics.Load())
	counter("arcsd_reported_entries_total", "Entries ingested through /v1/report.", m.reported.Load())
	counter("arcsd_neighbors_served_total", "Neighbour records served through /v1/neighbors.", m.neighborsServed.Load())
	counter("arcsd_evalcache_hits_total", "Probe evaluations served from the eval cache.", evc.Hits)
	counter("arcsd_evalcache_misses_total", "Probe evaluations computed fresh (cache misses).", evc.Misses)
	counter("arcsd_evalcache_dedup_total", "Probe evaluations shared with a concurrent in-flight compute.", evc.Dedups)
	fmt.Fprintf(w, "# HELP arcsd_store_entries Current number of stored configurations.\n")
	fmt.Fprintf(w, "# TYPE arcsd_store_entries gauge\narcsd_store_entries %d\n", health.Entries)
	degraded := 0
	if health.Degraded {
		degraded = 1
	}
	fmt.Fprintf(w, "# HELP arcsd_store_degraded 1 when the store is in degraded memory-only mode.\n")
	fmt.Fprintf(w, "# TYPE arcsd_store_degraded gauge\narcsd_store_degraded %d\n", degraded)
	fmt.Fprintf(w, "# HELP arcsd_store_dropped_saves_total Saves accepted in memory but not persisted while degraded.\n")
	fmt.Fprintf(w, "# TYPE arcsd_store_dropped_saves_total counter\narcsd_store_dropped_saves_total %d\n", health.DroppedSaves)
	fmt.Fprintf(w, "# HELP arcsd_store_wal_bytes On-disk size of the write-ahead log.\n")
	fmt.Fprintf(w, "# TYPE arcsd_store_wal_bytes gauge\narcsd_store_wal_bytes %d\n", health.WALBytes)
	fmt.Fprintf(w, "# HELP arcsd_store_snapshot_bytes On-disk size of the compacted snapshot.\n")
	fmt.Fprintf(w, "# TYPE arcsd_store_snapshot_bytes gauge\narcsd_store_snapshot_bytes %d\n", health.SnapshotBytes)
	fmt.Fprintf(w, "# HELP arcsd_evalcache_entries Resident eval-cache entries.\n")
	fmt.Fprintf(w, "# TYPE arcsd_evalcache_entries gauge\narcsd_evalcache_entries %d\n", evc.Entries)
	fmt.Fprintf(w, "# HELP arcsd_evalcache_inflight Probe computations currently running.\n")
	fmt.Fprintf(w, "# TYPE arcsd_evalcache_inflight gauge\narcsd_evalcache_inflight %d\n", evc.InFlight)
	counter("arcsd_merged_entries_total", "Entries accepted through /v1/merge replication.", m.merged.Load())
	if fl == nil {
		return
	}
	counter("arcsd_fleet_lookup_forwards_total", "Config lookups answered by forwarding to an owning peer.", m.fleetLookupFwd.Load())
	counter("arcsd_fleet_report_forwards_total", "Report batches forwarded to owning peers.", fl.stats.Forwards)
	counter("arcsd_fleet_replicated_total", "Locally authored entries replicated out to co-owners.", fl.stats.Replicated)
	counter("arcsd_fleet_merged_in_total", "Entries accepted from peer replication or anti-entropy.", fl.stats.MergedIn)
	counter("arcsd_fleet_repairs_total", "Entries pushed to peers by the anti-entropy sweep.", fl.stats.Repairs)
	counter("arcsd_fleet_sweeps_total", "Completed anti-entropy sweeps.", fl.stats.Sweeps)
	counter("arcsd_fleet_hints_dropped_total", "Hints dropped because a handoff queue overflowed or its peer left.", fl.stats.HandoffDropped)
	counter("arcsd_fleet_fallbacks_total", "Reports accepted locally because every owner was unreachable.", fl.stats.Fallbacks)
	counter("arcsd_fleet_membership_changes_total", "Membership epochs adopted since start.", fl.stats.MembershipChanges)
	counter("arcsd_fleet_membership_applied_total", "Pushed member lists that superseded the local one.", m.membershipApplied.Load())
	counter("arcsd_fleet_heartbeats_total", "Heartbeat pings sent to peers.", fl.stats.Heartbeats)
	counter("arcsd_fleet_heartbeat_failures_total", "Heartbeat pings that failed.", fl.stats.HeartbeatFailures)
	counter("arcsd_fleet_transferred_in_total", "Entries merged from bootstrap range transfers.", fl.stats.TransferredIn)
	counter("arcsd_fleet_transferred_out_total", "Entries served through /v1/transfer.", m.transferredOut.Load())
	counter("arcsd_fleet_transfer_retries_total", "Range-transfer attempts that were retried.", fl.stats.TransferRetries)
	counter("arcsd_fleet_transfer_epoch_conflicts_total", "Transfer requests rejected for naming a stale epoch.", m.transferEpochConflicts.Load())
	counter("arcsd_fleet_drained_total", "Entries pushed to new owners by a decommission drain.", fl.stats.Drained)
	counter("arcsd_fleet_drain_errors_total", "Decommission drains that completed partially.", m.drainErrors.Load())
	fmt.Fprintf(w, "# HELP arcsd_fleet_handoff_depth Hints queued for currently unreachable peers.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_handoff_depth gauge\narcsd_fleet_handoff_depth %d\n", fl.stats.HandoffDepth)
	fmt.Fprintf(w, "# HELP arcsd_fleet_epoch Current membership epoch.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_epoch gauge\narcsd_fleet_epoch %d\n", fl.stats.Epoch)
	fmt.Fprintf(w, "# HELP arcsd_fleet_peers_suspect Peers the failure detector currently suspects.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_peers_suspect gauge\narcsd_fleet_peers_suspect %d\n", fl.stats.PeersSuspect)
	fmt.Fprintf(w, "# HELP arcsd_fleet_peers_dead Peers the failure detector currently declares dead.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_peers_dead gauge\narcsd_fleet_peers_dead %d\n", fl.stats.PeersDead)
	fmt.Fprintf(w, "# HELP arcsd_fleet_nodes Fleet membership size.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_nodes gauge\narcsd_fleet_nodes %d\n", fl.nodes)
	fmt.Fprintf(w, "# HELP arcsd_fleet_replicas Configured replication factor.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_replicas gauge\narcsd_fleet_replicas %d\n", fl.replicas)
	fmt.Fprintf(w, "# HELP arcsd_fleet_owned_share Fraction of the ring this node owns as primary.\n")
	fmt.Fprintf(w, "# TYPE arcsd_fleet_owned_share gauge\narcsd_fleet_owned_share %g\n", fl.ownedShare)
}
