package server

import (
	"context"
	"math"
	"testing"

	"arcs/internal/cli"
	arcs "arcs/internal/core"
	"arcs/internal/evalcache"
	"arcs/internal/store"
)

// runSearch executes one SimSearcher search with a fresh eval cache and
// returns per-region winners plus the fresh-probe count.
func runSearch(t *testing.T, s SimSearcher, req SearchRequest) (map[string]SearchResult, uint64) {
	t.Helper()
	c := evalcache.New()
	s.Cache = c
	s.Parallelism = 1 // deterministic probe counts
	res, err := s.Search(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]SearchResult, len(res))
	for _, r := range res {
		out[r.Region] = r
	}
	return out, c.Stats().Misses
}

// TestSurrogateDifferential is the winner-quality acceptance suite for
// the learned search: on every (app, cap) cell of the matrix, the
// surrogate strategy with transfer seeding must land within 2% of the
// exhaustive-search optimum on every region, while spending at least 5x
// fewer fresh probes than a cold Nelder-Mead search of the same cell.
func TestSurrogateDifferential(t *testing.T) {
	arch, err := cli.BuildArch("crill")
	if err != nil {
		t.Fatal(err)
	}
	spaceSize := arcs.TableISpace(arch).Size()
	cells := []struct {
		app, workload string
		capW          float64
	}{
		{"SP", "B", 60},
		{"SP", "B", 85},
		{"BT", "B", 70},
		{"LULESH", "45", 75},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.app+"/"+cell.workload, func(t *testing.T) {
			req := SearchRequest{App: cell.app, Workload: cell.workload, Arch: "crill", CapW: cell.capW}

			// Ground truth: full enumeration of the Table-I lattice.
			exReq := req
			exReq.MaxEvals = spaceSize
			exact, exProbes := runSearch(t, SimSearcher{Algo: arcs.AlgoExhaustive}, exReq)

			// Cold Nelder-Mead: the pre-surrogate default, default budget.
			nmReq := req
			nmReq.MaxEvals = 90
			_, nmProbes := runSearch(t, SimSearcher{Algo: arcs.AlgoNelderMead}, nmReq)

			// Transfer store: the exhaustive winners of the two adjacent
			// caps, exactly what a fleet that has already tuned the
			// neighbouring contexts would serve.
			st, err := store.Open(t.TempDir(), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			for _, dcap := range []float64{-5, +5} {
				nReq := req
				nReq.CapW = cell.capW + dcap
				nReq.MaxEvals = spaceSize
				winners, _ := runSearch(t, SimSearcher{Algo: arcs.AlgoExhaustive}, nReq)
				for region, w := range winners {
					st.Save(arcs.HistoryKey{
						App: cell.app, Workload: cell.workload, CapW: nReq.CapW, Region: region,
					}, w.Cfg, w.Perf)
				}
			}

			surReq := req
			surReq.MaxEvals = 90
			sur, surProbes := runSearch(t, SimSearcher{
				Algo: arcs.AlgoSurrogate, Neighbors: st.LoadNeighbors,
			}, surReq)

			t.Logf("probes: exhaustive=%d nm-cold=%d surrogate-transfer=%d (ratio %.1fx)",
				exProbes, nmProbes, surProbes, float64(nmProbes)/float64(surProbes))

			for region, ex := range exact {
				sr, ok := sur[region]
				if !ok {
					t.Fatalf("surrogate returned no result for region %s", region)
				}
				if tol := 0.02 * math.Abs(ex.Perf); sr.Perf-ex.Perf > tol {
					t.Errorf("region %s: surrogate perf %.6g vs exhaustive %.6g (off by %.2f%%, tol 2%%)",
						region, sr.Perf, ex.Perf, 100*(sr.Perf-ex.Perf)/math.Abs(ex.Perf))
				}
			}
			if surProbes == 0 || nmProbes < 5*surProbes {
				t.Errorf("probe ratio: nm-cold=%d surrogate-transfer=%d, want >=5x fewer", nmProbes, surProbes)
			}
		})
	}
}
