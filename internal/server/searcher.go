package server

import (
	"context"
	"fmt"
	"runtime"

	"arcs/internal/cli"
	arcs "arcs/internal/core"
	"arcs/internal/evalcache"
)

// SearchRequest describes one server-side search: an app-level context
// whose every region gets a bounded Harmony search.
type SearchRequest struct {
	App      string
	Workload string
	Arch     string
	CapW     float64 // 0 = run at TDP
	MaxEvals int     // per-region evaluation budget
}

// SearchResult is one region's best configuration from a search.
type SearchResult struct {
	Region string
	CapW   float64 // effective cap the search ran at (TDP when req.CapW=0)
	Cfg    arcs.ConfigValues
	Perf   float64
}

// Searcher answers total misses. Implementations must be safe for
// concurrent use; the server's single-flight layer only deduplicates
// identical keys.
type Searcher interface {
	Search(ctx context.Context, req SearchRequest) ([]SearchResult, error)
}

// SimSearcher runs a bounded Harmony search per region against the
// analytic simulator — the paper's unmeasured offline search execution
// (§III-B), hosted server-side so the cost is paid once per context
// instead of once per client. Regions are probed directly through
// arcs.BatchSearch: candidate batches evaluate concurrently on Machine
// clones, and results are memoised in the eval cache so a repeated search
// (same app, workload, arch, cap) does no probe work at all.
type SimSearcher struct {
	// Parallelism bounds concurrent probes per search; 0 selects
	// GOMAXPROCS, 1 evaluates serially.
	Parallelism int
	// Cache memoises probe results across searches (nil = no memoisation).
	Cache *evalcache.Cache
	// Algo selects the per-region search strategy; AlgoAuto runs the
	// historical Nelder-Mead.
	Algo arcs.SearchAlgo
	// Neighbors, when set with Algo == AlgoSurrogate, supplies transfer
	// seeds from neighbouring tuned contexts (normally the daemon's own
	// knowledge store): a new context starts its model from what nearby
	// caps and workloads already learned instead of cold.
	Neighbors func(k arcs.HistoryKey, max int) []arcs.Neighbor
}

// Search implements Searcher.
func (s SimSearcher) Search(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	if req.MaxEvals <= 0 {
		return nil, fmt.Errorf("server: search budget must be positive, got %d", req.MaxEvals)
	}
	app, err := cli.BuildApp(req.App, req.Workload)
	if err != nil {
		return nil, err
	}
	arch, err := cli.BuildArch(req.Arch)
	if err != nil {
		return nil, err
	}
	regions := make([]arcs.RegionModel, 0, len(app.Regions))
	for _, spec := range app.Regions {
		regions = append(regions, arcs.RegionModel{Name: spec.Name, Model: spec.Model})
	}
	par := s.Parallelism
	if par == 0 {
		par = runtime.GOMAXPROCS(0)
	}
	algo := s.Algo
	if algo == arcs.AlgoAuto {
		algo = arcs.AlgoNelderMead
	}
	var seeds func(region string) []arcs.TransferSeed
	if algo == arcs.AlgoSurrogate && s.Neighbors != nil {
		// Neighbor keys carry the effective cap BatchSearch will run at:
		// stored entries are keyed by effective cap, never the 0 sentinel.
		effCap := req.CapW
		if effCap == 0 { //arcslint:ignore floatcmp 0 is the uncapped sentinel, compared verbatim
			effCap = arch.TDPW
		}
		seeds = func(region string) []arcs.TransferSeed {
			ns := s.Neighbors(arcs.HistoryKey{
				App: app.Name, Workload: app.Workload, CapW: effCap, Region: region,
			}, arcs.DefaultTransferSeeds)
			out := make([]arcs.TransferSeed, 0, len(ns))
			for _, n := range ns {
				// A same-workload neighbour's perf is a verifiable promise
				// at a nearby cap; a different workload size only donates
				// its configuration.
				perf := 0.0
				if n.Key.Workload == app.Workload {
					perf = n.Perf
				}
				out = append(out, arcs.TransferSeed{Cfg: n.Cfg, Perf: perf})
			}
			return out
		}
	}
	results, err := arcs.BatchSearch(ctx, arch, regions, arcs.BatchSearchOptions{
		Algo:        algo,
		MaxEvals:    req.MaxEvals,
		CapW:        req.CapW,
		Parallelism: par,
		Cache:       s.Cache,
		App:         app.Name,
		Workload:    app.Workload,
		Seeds:       seeds,
	})
	if err != nil {
		return nil, err
	}
	out := make([]SearchResult, 0, len(results))
	for _, r := range results {
		out = append(out, SearchResult{Region: r.Region, CapW: r.CapW, Cfg: r.Cfg, Perf: r.Perf})
	}
	return out, nil
}
