package server

import (
	"context"
	"fmt"

	"arcs/internal/apex"
	"arcs/internal/cli"
	arcs "arcs/internal/core"
	"arcs/internal/omp"
	"arcs/internal/sim"
)

// SearchRequest describes one server-side search: an app-level context
// whose every region gets a bounded Harmony search.
type SearchRequest struct {
	App      string
	Workload string
	Arch     string
	CapW     float64 // 0 = run at TDP
	MaxEvals int     // per-region evaluation budget
}

// SearchResult is one region's best configuration from a search.
type SearchResult struct {
	Region string
	CapW   float64 // effective cap the search ran at (TDP when req.CapW=0)
	Cfg    arcs.ConfigValues
	Perf   float64
}

// Searcher answers total misses. Implementations must be safe for
// concurrent use; the server's single-flight layer only deduplicates
// identical keys.
type Searcher interface {
	Search(ctx context.Context, req SearchRequest) ([]SearchResult, error)
}

// SimSearcher runs a bounded Nelder-Mead search per region against the
// analytic simulator — the paper's unmeasured offline search execution
// (§III-B), hosted server-side so the cost is paid once per context
// instead of once per client.
type SimSearcher struct{}

// Search implements Searcher.
func (SimSearcher) Search(ctx context.Context, req SearchRequest) ([]SearchResult, error) {
	if req.MaxEvals <= 0 {
		return nil, fmt.Errorf("server: search budget must be positive, got %d", req.MaxEvals)
	}
	app, err := cli.BuildApp(req.App, req.Workload)
	if err != nil {
		return nil, err
	}
	arch, err := cli.BuildArch(req.Arch)
	if err != nil {
		return nil, err
	}
	mach, err := sim.NewMachine(arch)
	if err != nil {
		return nil, err
	}
	if req.CapW > 0 {
		if err := mach.SetPowerCap(req.CapW); err != nil {
			return nil, err
		}
	}
	effCap := req.CapW
	if effCap == 0 {
		effCap = arch.TDPW
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	rt := omp.NewRuntime(mach)
	apx := apex.New()
	apx.SetPowerSource(mach)
	rt.RegisterTool(apex.NewTool(apx))
	hist := arcs.NewMemHistory()
	tuner, err := arcs.New(apx, arch, arcs.Options{
		// OfflineSearch semantics (search + save best) with a bounded
		// algorithm instead of the exhaustive default.
		Strategy: arcs.StrategyOfflineSearch,
		Algo:     arcs.AlgoNelderMead,
		MaxEvals: req.MaxEvals,
		History:  hist,
		Key: func(region string) arcs.HistoryKey {
			return arcs.HistoryKey{App: app.Name, Workload: app.Workload, CapW: effCap, Region: region}
		},
	})
	if err != nil {
		return nil, err
	}
	// Enough invocations for every region to spend its budget, plus slack
	// to exploit the winner.
	if _, err := app.WithSteps(req.MaxEvals + 8).Run(rt); err != nil {
		return nil, err
	}
	if err := tuner.Finish(); err != nil {
		return nil, err
	}
	out := make([]SearchResult, 0, hist.Len())
	for _, e := range hist.Entries() {
		out = append(out, SearchResult{Region: e.Key.Region, CapW: e.Key.CapW, Cfg: e.Cfg, Perf: e.Perf})
	}
	return out, nil
}
