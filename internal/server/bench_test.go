package server

import (
	"context"
	"fmt"
	"testing"

	arcs "arcs/internal/core"
	"arcs/internal/evalcache"
	"arcs/internal/store"
)

// Cold-search latency of SimSearcher on the Table-I space: every
// iteration uses a fresh eval cache, so each search pays full probe cost.
// The parallelism sweep is the tentpole speedup measurement — compare
// p=1 against p=8. The custom evals/s metric surfaces search throughput
// in cmd/benchjson output.
func benchmarkSimSearcherCold(b *testing.B, parallelism int) {
	b.Helper()
	req := SearchRequest{App: "SP", Workload: "B", Arch: "crill", CapW: 70, MaxEvals: 40}
	ctx := context.Background()
	var probes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := evalcache.New()
		s := SimSearcher{Parallelism: parallelism, Cache: c}
		if _, err := s.Search(ctx, req); err != nil {
			b.Fatal(err)
		}
		probes += c.Stats().Misses // cold: misses == fresh probes == evals
	}
	b.StopTimer()
	b.ReportMetric(float64(probes)/b.Elapsed().Seconds(), "evals/s")
}

func BenchmarkSimSearcherCold(b *testing.B) {
	for _, p := range []int{1, 2, 8} {
		// No trailing -N in the name: benchjson would strip it as a
		// GOMAXPROCS suffix on single-CPU runners.
		b.Run(fmt.Sprintf("parallel%d", p), func(b *testing.B) {
			benchmarkSimSearcherCold(b, p)
		})
	}
}

// Warm-search latency: all iterations share one cache, so after the first
// search every probe is a hit — the steady state of a long-lived arcsd.
func BenchmarkSimSearcherWarm(b *testing.B) {
	req := SearchRequest{App: "SP", Workload: "B", Arch: "crill", CapW: 70, MaxEvals: 40}
	s := SimSearcher{Parallelism: 8, Cache: evalcache.New()}
	if _, err := s.Search(context.Background(), req); err != nil {
		b.Fatal(err) // prime the cache outside the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Search(context.Background(), req); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := s.Cache.Stats()
	b.ReportMetric(float64(st.Hits)/float64(st.Hits+st.Misses), "hit-rate")
}

// Surrogate search economics. The probes/op metric is the contract the
// CI perf gate holds: cold surrogate search must stay in the same probe
// class as Nelder-Mead, and transfer-seeded search must stay an order of
// magnitude cheaper (the verified-transfer exit). Parallelism is 1 so
// probe counts are deterministic run to run.
func BenchmarkSurrogateCold(b *testing.B) {
	req := SearchRequest{App: "SP", Workload: "B", Arch: "crill", CapW: 70, MaxEvals: 90}
	ctx := context.Background()
	var probes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := evalcache.New()
		s := SimSearcher{Parallelism: 1, Cache: c, Algo: arcs.AlgoSurrogate}
		if _, err := s.Search(ctx, req); err != nil {
			b.Fatal(err)
		}
		probes += c.Stats().Misses
	}
	b.StopTimer()
	b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
}

// BenchmarkSurrogateTransfer measures a new-context search that can
// transfer-seed from the two adjacent caps' tuned winners, the
// steady-state of a fleet that has been serving a while.
func BenchmarkSurrogateTransfer(b *testing.B) {
	req := SearchRequest{App: "SP", Workload: "B", Arch: "crill", CapW: 70, MaxEvals: 90}
	ctx := context.Background()
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for _, capW := range []float64{65, 75} {
		nReq := req
		nReq.CapW = capW
		res, err := SimSearcher{Parallelism: 1, Cache: evalcache.New(), Algo: arcs.AlgoNelderMead}.Search(ctx, nReq)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res {
			st.Save(arcs.HistoryKey{App: req.App, Workload: req.Workload, CapW: capW, Region: r.Region}, r.Cfg, r.Perf)
		}
	}
	var probes uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := evalcache.New()
		s := SimSearcher{Parallelism: 1, Cache: c, Algo: arcs.AlgoSurrogate, Neighbors: st.LoadNeighbors}
		if _, err := s.Search(ctx, req); err != nil {
			b.Fatal(err)
		}
		probes += c.Stats().Misses
	}
	b.StopTimer()
	b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
}
