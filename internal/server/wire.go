// Content negotiation and pooled response encoding for the arcsd API.
//
// JSON is the default and the permanent fallback: a request without an
// Accept of application/x-arcs-bin gets exactly the responses it always
// did. Binary is strictly opt-in per request, so a mixed fleet of old
// and new clients shares one server. Error bodies are always JSON —
// a binary client still reads the status code, and the body stays
// debuggable with curl.
//
// All response encoding goes through sync.Pools: the previous handlers
// built a json.Encoder per response and wrote straight to the socket,
// which showed up as steady allocation churn on the config/report hot
// path.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"arcs/internal/codec"
)

// acceptsBinary reports whether the client asked for binary responses.
// Absence, */* or application/json keep the JSON default, so a client
// that never heard of the codec never sees a frame.
func acceptsBinary(r *http.Request) bool {
	for _, v := range r.Header.Values("Accept") {
		if strings.Contains(v, codec.ContentType) {
			return true
		}
	}
	return false
}

// binaryBody reports whether the request body claims to be a binary
// frame (Content-Type: application/x-arcs-bin, parameters tolerated).
func binaryBody(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	return ct == codec.ContentType || strings.HasPrefix(ct, codec.ContentType+";")
}

// jsonBuf pairs a buffer with a json.Encoder bound to it for the life
// of the pool entry, so hot handlers neither allocate an encoder per
// response nor write to the socket in encoder-sized pieces.
type jsonBuf struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonBufPool = sync.Pool{New: func() any {
	jb := &jsonBuf{}
	jb.enc = json.NewEncoder(&jb.buf)
	return jb
}}

// writeJSON encodes v through a pooled buffer and writes it with an
// exact Content-Length.
func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuf)
	defer jsonBufPool.Put(jb)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		// Response types are plain structs and maps; encoding them cannot
		// fail at runtime, but a silent empty body would hide it if it did.
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(jb.buf.Bytes())
}

// errorJSON writes a JSON error body with the given status, whatever
// the Accept header said.
func errorJSON(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// binBuf pairs a codec.Encoder with its output buffer; binDec pools
// Decoders so their intern tables survive across requests (the same
// app/workload/region names arrive on every report).
type binBuf struct {
	enc codec.Encoder
	buf []byte
}

var (
	binBufPool = sync.Pool{New: func() any { return new(binBuf) }}
	binDecPool = sync.Pool{New: func() any { return new(codec.Decoder) }}
)

// writeFrame writes one already-encoded binary frame.
func writeFrame(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", codec.ContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(frame)))
	w.WriteHeader(status)
	_, _ = w.Write(frame)
}

// writeConfig answers /v1/config in the negotiated encoding.
func writeConfig(w http.ResponseWriter, r *http.Request, resp ConfigResponse) {
	if !acceptsBinary(r) {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	bb := binBufPool.Get().(*binBuf)
	defer binBufPool.Put(bb)
	ans := codec.ConfigAnswer{
		Key: resp.Key, Cfg: resp.Config, Perf: resp.Perf, Version: resp.Version,
		Source: resp.Source, CapDistance: resp.CapDistance,
	}
	bb.buf = bb.enc.AppendConfigAnswer(bb.buf[:0], &ans)
	writeFrame(w, http.StatusOK, bb.buf)
}

// writeAck acknowledges a report ingest in the negotiated encoding.
func (s *Server) writeAck(w http.ResponseWriter, r *http.Request, saved int) {
	n := s.st.Len()
	if !acceptsBinary(r) {
		writeJSON(w, http.StatusOK, map[string]any{"saved": saved, "store_len": n})
		return
	}
	bb := binBufPool.Get().(*binBuf)
	defer binBufPool.Put(bb)
	ack := codec.Ack{Saved: uint64(saved), StoreLen: uint64(n)}
	bb.buf = bb.enc.AppendAck(bb.buf[:0], &ack)
	writeFrame(w, http.StatusOK, bb.buf)
}
