package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"arcs/internal/codec"
	arcs "arcs/internal/core"
	"arcs/internal/fleet"
	"arcs/internal/store"
	"arcs/internal/storeclient"
)

// TestDigestEndpoint checks /v1/digest standalone: the per-shard
// digests must partition the store's keys with the stored versions, in
// both encodings, and reject bad shard numbers.
func TestDigestEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := newTestServer(t, Config{Store: st})

	keys := map[string]uint64{}
	for i := 0; i < 20; i++ {
		k := arcs.HistoryKey{App: "BT", Workload: "C", CapW: float64(50 + i), Region: "r"}
		st.Save(k, arcs.ConfigValues{Threads: 4}, 2)
		st.Save(k, arcs.ConfigValues{Threads: 8}, 1) // version 2
		keys[k.String()] = 2
	}

	got := map[string]uint64{}
	for shard := 0; shard < store.NumShards; shard++ {
		resp, err := http.Get(fmt.Sprintf("%s/v1/digest?shard=%d", ts.URL, shard))
		if err != nil {
			t.Fatal(err)
		}
		var d codec.Digest
		if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if int(d.Shard) != shard {
			t.Fatalf("digest shard = %d, want %d", d.Shard, shard)
		}
		for _, e := range d.Entries {
			got[e.Key] = e.Version
		}

		// Binary negotiation must carry the identical digest.
		req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/v1/digest?shard=%d", ts.URL, shard), nil)
		req.Header.Set("Accept", codec.ContentType)
		bresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if ct := bresp.Header.Get("Content-Type"); ct != codec.ContentType {
			t.Fatalf("binary digest content-type = %q", ct)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(bresp.Body); err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		kind, payload, _, err := codec.Frame(buf.Bytes())
		if err != nil || kind != codec.KindDigest {
			t.Fatalf("binary digest frame: kind %#x err %v", kind, err)
		}
		var dec codec.Decoder
		bd, err := dec.DecodeDigest(payload)
		if err != nil {
			t.Fatal(err)
		}
		if len(bd.Entries) != len(d.Entries) {
			t.Fatalf("binary digest has %d entries, JSON %d", len(bd.Entries), len(d.Entries))
		}
	}
	if len(got) != len(keys) {
		t.Fatalf("digests cover %d keys, store has %d", len(got), len(keys))
	}
	for ck, v := range keys {
		if got[ck] != v {
			t.Fatalf("digest version for %q = %d, want %d", ck, got[ck], v)
		}
	}

	for _, q := range []string{"", "shard=-1", "shard=16", "shard=x"} {
		resp, err := http.Get(ts.URL + "/v1/digest?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("digest %q status = %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestMergeEndpoint checks /v1/merge: versioned entries are applied
// under Supersedes (idempotent re-sends merge zero), serve afterwards,
// and non-finite perf is rejected.
func TestMergeEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := newTestServer(t, Config{Store: st})

	k := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "main"}
	entries := []store.Entry{{Key: k, Cfg: arcs.ConfigValues{Threads: 16}, Perf: 1.5, Version: 7}}
	post := func(body []byte, ct string) (int, map[string]any) {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/merge", bytes.NewReader(body))
		req.Header.Set("Content-Type", ct)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&out)
		return resp.StatusCode, out
	}

	body, _ := json.Marshal(entries)
	code, out := post(body, "application/json")
	if code != http.StatusOK || out["saved"] != float64(1) {
		t.Fatalf("merge = %d %v, want 200 saved=1", code, out)
	}
	// Idempotent: the identical entry merges zero the second time.
	if code, out = post(body, "application/json"); code != http.StatusOK || out["saved"] != float64(0) {
		t.Fatalf("re-merge = %d %v, want 200 saved=0", code, out)
	}
	if e, ok := st.Get(k); !ok || e.Version != 7 || e.Cfg.Threads != 16 {
		t.Fatalf("merged entry = %+v ok=%v", e, ok)
	}

	// Binary: a concatenation of KindEntry frames, higher version wins.
	var enc codec.Encoder
	ce := codec.Entry{Key: k, Cfg: arcs.ConfigValues{Threads: 32}, Perf: 1.2, Version: 9}
	ce2 := codec.Entry{Key: arcs.HistoryKey{App: "LU", Region: "r"}, Cfg: arcs.ConfigValues{Threads: 2}, Perf: 3, Version: 1}
	bin := enc.AppendEntry(nil, &ce)
	bin = enc.AppendEntry(bin, &ce2)
	if code, out = post(bin, codec.ContentType); code != http.StatusOK || out["saved"] != float64(2) {
		t.Fatalf("binary merge = %d %v, want 200 saved=2", code, out)
	}
	if e, _ := st.Get(k); e.Version != 9 || e.Cfg.Threads != 32 {
		t.Fatalf("after binary merge entry = %+v", e)
	}

	bad, _ := json.Marshal([]map[string]any{{"key": map[string]string{"app": "X", "region": "r"}, "perf": "NaN"}})
	if code, _ = post(bad, "application/json"); code != http.StatusBadRequest {
		t.Fatalf("bad merge status = %d, want 400", code)
	}
}

// TestFleetLookupForwarding checks the /v1/config proxy path: a fleet
// member that does not own a key forwards the lookup one hop to the
// owner, marks the hop with the forwarded header, and an
// already-forwarded request is answered locally no matter who owns it.
func TestFleetLookupForwarding(t *testing.T) {
	// Stub owner: answers every config lookup and records the header.
	var sawForwarded bool
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/config" {
			http.NotFound(w, r)
			return
		}
		sawForwarded = r.Header.Get(codec.ForwardedHeader) != ""
		_ = json.NewEncoder(w).Encode(ConfigResponse{
			Config: arcs.ConfigValues{Threads: 64}, Perf: 1.25, Version: 3, Source: "exact",
		})
	}))
	t.Cleanup(owner.Close)

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	self := "http://self.invalid"
	peer := storeclient.New(owner.URL)
	fl, err := fleet.New(fleet.Config{
		Self:  self,
		Nodes: []string{self, owner.URL},
		// One owner per key: whatever self does not own, the stub does.
		Replicas: 1,
		Store:    st,
		Peers:    map[string]fleet.Peer{owner.URL: peer},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{
		Store: st, Fleet: fl,
		PeerClient: func(name string) *storeclient.Client {
			if name == owner.URL {
				return peer
			}
			return nil
		},
	})

	// Find a key the stub owns.
	var stubKey arcs.HistoryKey
	for i := 0; ; i++ {
		k := arcs.HistoryKey{App: "BT", Workload: "A", CapW: 70, Region: fmt.Sprintf("r%d", i)}
		if fl.Ring().Primary(k.String()) == owner.URL {
			stubKey = k
			break
		}
	}

	q := fmt.Sprintf("app=%s&workload=%s&cap=%g&region=%s&fallback=0&search=0",
		stubKey.App, stubKey.Workload, stubKey.CapW, stubKey.Region)
	cr, code := getConfig(t, ts.URL, q)
	if code != http.StatusOK || cr.Config.Threads != 64 || cr.Version != 3 {
		t.Fatalf("forwarded lookup = %d %+v, want the stub's answer", code, cr)
	}
	if !sawForwarded {
		t.Fatal("forwarded lookup did not carry the forwarded header")
	}

	// Already-forwarded request for the same (unowned, absent) key: no
	// second hop, answered locally as a miss.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/config?"+q, nil)
	req.Header.Set(codec.ForwardedHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("already-forwarded lookup status = %d, want 404 (local miss)", resp.StatusCode)
	}
}

// TestFleetHealthAndMetrics checks the observability wiring: /healthz
// grows a fleet section and /metrics the arcsd_fleet_* series when the
// server is a fleet member.
func TestFleetHealthAndMetrics(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	self := "http://a.invalid"
	other := "http://b.invalid"
	peer := storeclient.New(other)
	fl, err := fleet.New(fleet.Config{
		Self: self, Nodes: []string{self, other}, Replicas: 2,
		Store: st, Peers: map[string]fleet.Peer{other: peer},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st, Fleet: fl, PeerClient: func(name string) *storeclient.Client {
		if name == other {
			return peer
		}
		return nil
	}})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hr.Fleet == nil || hr.Fleet.Self != self || len(hr.Fleet.Nodes) != 2 || hr.Fleet.Replicas != 2 {
		t.Fatalf("healthz fleet section = %+v", hr.Fleet)
	}
	if hr.Fleet.Epoch != 1 {
		t.Fatalf("healthz fleet epoch = %d, want 1", hr.Fleet.Epoch)
	}
	if hr.Fleet.OwnedShare <= 0 || hr.Fleet.OwnedShare >= 1 {
		t.Fatalf("owned share = %v, want within (0,1)", hr.Fleet.OwnedShare)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	for _, series := range []string{
		"arcsd_fleet_nodes 2", "arcsd_fleet_replicas 2",
		"arcsd_fleet_handoff_depth 0", "arcsd_fleet_sweeps_total 0",
		"arcsd_fleet_epoch 1", "arcsd_fleet_hints_dropped_total 0",
		"arcsd_fleet_peers_suspect 0", "arcsd_fleet_peers_dead 0",
		"arcsd_fleet_membership_changes_total 0",
		"arcsd_fleet_transferred_in_total 0", "arcsd_fleet_drained_total 0",
	} {
		if !bytes.Contains(buf.Bytes(), []byte(series)) {
			t.Fatalf("metrics missing %q in:\n%s", series, buf.String())
		}
	}
}
