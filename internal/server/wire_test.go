// Content-negotiation tests for the binary wire format: binary clients
// against this server, JSON clients against this server, and corrupt
// binary input, which must be a 400 and never a panic.
package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"

	"arcs/internal/codec"
	arcs "arcs/internal/core"
	"arcs/internal/ompt"
)

func binReq(t *testing.T, method, url string, body []byte) *http.Request {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", codec.ContentType)
	if body != nil {
		req.Header.Set("Content-Type", codec.ContentType)
	}
	return req
}

// TestBinaryConfigRoundTrip: a binary client posts a binary report and
// reads the answer back as a ConfigAnswer frame.
func TestBinaryConfigRoundTrip(t *testing.T) {
	ts := newTestServer(t, Config{})
	key := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "x_solve"}
	cfg := arcs.ConfigValues{Threads: 16, Schedule: ompt.ScheduleGuided, Chunk: 8, FreqGHz: 2.2, Bind: ompt.BindSpread}

	var enc codec.Encoder
	rep := codec.Report{Key: key, Cfg: cfg, Perf: 1.5}
	resp, err := http.DefaultClient.Do(binReq(t, http.MethodPost, ts.URL+"/v1/report", enc.AppendReport(nil, &rep)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary report status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != codec.ContentType {
		t.Fatalf("ack Content-Type = %q, want %q", ct, codec.ContentType)
	}
	var dec codec.Decoder
	kind, payload, _, err := codec.Frame(body)
	if err != nil || kind != codec.KindAck {
		t.Fatalf("ack frame kind=%#x err=%v", kind, err)
	}
	var ack codec.Ack
	if err := dec.DecodeAck(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Saved != 1 || ack.StoreLen != 1 {
		t.Fatalf("ack = %+v, want saved=1 store_len=1", ack)
	}

	resp, err = http.DefaultClient.Do(binReq(t, http.MethodGet,
		ts.URL+"/v1/config?app=SP&workload=B&cap=70&region=x_solve", nil))
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary config status %d: %s", resp.StatusCode, body)
	}
	kind, payload, _, err = codec.Frame(body)
	if err != nil || kind != codec.KindConfigAnswer {
		t.Fatalf("config frame kind=%#x err=%v", kind, err)
	}
	var ans codec.ConfigAnswer
	if err := dec.DecodeConfigAnswer(payload, &ans); err != nil {
		t.Fatal(err)
	}
	if ans.Key != key || ans.Cfg != cfg || ans.Perf != 1.5 || ans.Source != "exact" || ans.Version != 1 {
		t.Fatalf("binary config answer = %+v", ans)
	}
}

// TestBinaryReportBatch: one KindReportBatch frame on /v1/reports saves
// every record in a single round trip.
func TestBinaryReportBatch(t *testing.T) {
	ts := newTestServer(t, Config{})
	reports := make([]codec.Report, 5)
	for i := range reports {
		reports[i] = codec.Report{
			Key:  arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: string(rune('a' + i))},
			Cfg:  arcs.ConfigValues{Threads: 2 + i},
			Perf: float64(i + 1),
		}
	}
	var enc codec.Encoder
	resp, err := http.DefaultClient.Do(binReq(t, http.MethodPost, ts.URL+"/v1/reports", enc.AppendReportBatch(nil, reports)))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	var dec codec.Decoder
	kind, payload, _, err := codec.Frame(body)
	if err != nil || kind != codec.KindAck {
		t.Fatalf("batch ack kind=%#x err=%v", kind, err)
	}
	var ack codec.Ack
	if err := dec.DecodeAck(payload, &ack); err != nil {
		t.Fatal(err)
	}
	if ack.Saved != 5 || ack.StoreLen != 5 {
		t.Fatalf("batch ack = %+v, want 5/5", ack)
	}
}

// TestJSONClientUnaffected: a client that never mentions the binary
// type gets byte-compatible JSON on every endpoint, including the
// streamed dump.
func TestJSONClientUnaffected(t *testing.T) {
	ts := newTestServer(t, Config{})
	k := arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: "r"}
	postReport(t, ts.URL, []ReportRequest{{Key: k, Cfg: arcs.ConfigValues{Threads: 4}, Perf: 2}})

	cr, code := getConfig(t, ts.URL, "app=SP&workload=B&cap=70&region=r")
	if code != 200 || cr.Source != "exact" || cr.Config.Threads != 4 {
		t.Fatalf("JSON config = %+v (code %d)", cr, code)
	}

	resp, err := http.Get(ts.URL + "/v1/dump")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("dump Content-Type = %q", ct)
	}
	var entries []struct {
		Key  arcs.HistoryKey `json:"key"`
		Perf float64         `json:"perf"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&entries); err != nil {
		t.Fatalf("streamed dump is not a valid JSON array: %v", err)
	}
	if len(entries) != 1 || entries[0].Key != k || entries[0].Perf != 2 {
		t.Fatalf("dump = %+v", entries)
	}
}

// TestBinaryDumpStreamsFrames: a binary dump is a concatenation of
// KindEntry frames, one per record.
func TestBinaryDumpStreamsFrames(t *testing.T) {
	ts := newTestServer(t, Config{})
	var reports []ReportRequest
	for i := 0; i < 3; i++ {
		reports = append(reports, ReportRequest{
			Key:  arcs.HistoryKey{App: "SP", Workload: "B", CapW: 70, Region: string(rune('a' + i))},
			Cfg:  arcs.ConfigValues{Threads: 2 + i},
			Perf: float64(i + 1),
		})
	}
	postReport(t, ts.URL, reports)

	resp, err := http.DefaultClient.Do(binReq(t, http.MethodGet, ts.URL+"/v1/dump", nil))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != codec.ContentType {
		t.Fatalf("binary dump Content-Type = %q", ct)
	}
	var dec codec.Decoder
	var got []codec.Entry
	for pos := 0; pos < len(body); {
		kind, payload, n, err := codec.Frame(body[pos:])
		if err != nil || kind != codec.KindEntry {
			t.Fatalf("dump frame %d: kind=%#x err=%v", len(got), kind, err)
		}
		var e codec.Entry
		if err := dec.DecodeEntry(payload, &e); err != nil {
			t.Fatal(err)
		}
		got = append(got, e)
		pos += n
	}
	if len(got) != len(reports) {
		t.Fatalf("binary dump returned %d entries, want %d", len(got), len(reports))
	}
	for i, e := range got {
		if e.Key != reports[i].Key || e.Cfg != reports[i].Cfg || e.Perf != reports[i].Perf {
			t.Fatalf("dump entry %d = %+v, want %+v", i, e, reports[i])
		}
	}
}

// TestCorruptBinaryBodyIs400 throws damaged frames at the report
// endpoints: every one must come back 400 with a JSON error, and the
// daemon must keep serving afterwards.
func TestCorruptBinaryBodyIs400(t *testing.T) {
	ts := newTestServer(t, Config{})
	var enc codec.Encoder
	rep := codec.Report{Key: arcs.HistoryKey{App: "SP", Region: "r"}, Perf: 1}
	good := enc.AppendReport(nil, &rep)

	flipped := bytes.Clone(good)
	flipped[len(flipped)/2] ^= 0xFF
	wrongKind := enc.AppendAck(nil, &codec.Ack{Saved: 1}) // verified frame, wrong kind
	cases := map[string][]byte{
		"garbage":    []byte("\xa7\x01 not a frame"),
		"empty":      {},
		"truncated":  good[:len(good)-3],
		"bit-flip":   flipped,
		"wrong-kind": wrongKind,
	}
	for name, body := range cases {
		for _, path := range []string{"/v1/report", "/v1/reports"} {
			resp, err := http.DefaultClient.Do(binReq(t, http.MethodPost, ts.URL+path, body))
			if err != nil {
				t.Fatalf("%s %s: %v", name, path, err)
			}
			b, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("%s %s: status %d (%s), want 400", name, path, resp.StatusCode, b)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Fatalf("%s %s: error Content-Type = %q, want JSON", name, path, ct)
			}
			var e map[string]string
			if err := json.Unmarshal(b, &e); err != nil || e["error"] == "" {
				t.Fatalf("%s %s: error body %q not a JSON error", name, path, b)
			}
		}
	}

	// The server still works after the abuse.
	resp, err := http.DefaultClient.Do(binReq(t, http.MethodPost, ts.URL+"/v1/report", good))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid report after corrupt ones: status %d", resp.StatusCode)
	}
}

// TestJSONReportsEndpoint: /v1/reports accepts the plain JSON array
// form too — binary is negotiated, never required.
func TestJSONReportsEndpoint(t *testing.T) {
	ts := newTestServer(t, Config{})
	body, _ := json.Marshal([]ReportRequest{
		{Key: arcs.HistoryKey{App: "SP", Region: "a"}, Perf: 1},
		{Key: arcs.HistoryKey{App: "SP", Region: "b"}, Perf: 2},
	})
	resp, err := http.Post(ts.URL+"/v1/reports", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out["saved"] != float64(2) {
		t.Fatalf("JSON /v1/reports: status %d out %v", resp.StatusCode, out)
	}
}
