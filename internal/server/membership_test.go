package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"arcs/internal/codec"
	arcs "arcs/internal/core"
	"arcs/internal/fleet"
	"arcs/internal/store"
	"arcs/internal/storeclient"
)

// newMemberServer builds a test server that is a fleet member alongside
// one unreachable peer, with NewPeer wired so live joins can resolve
// clients for nodes that appear later.
func newMemberServer(t *testing.T, st *store.Store, self, other string) (string, *fleet.Fleet) {
	t.Helper()
	fl, err := fleet.New(fleet.Config{
		Self: self, Nodes: []string{self, other}, Replicas: 2, Store: st,
		NewPeer: func(name string) fleet.Peer { return storeclient.New(name, storeclient.WithRetries(0)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := newTestServer(t, Config{Store: st, Fleet: fl})
	return ts.URL, fl
}

func postJSON(t *testing.T, url string, body any) (*http.Response, MembershipResponse) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var mr MembershipResponse
	_ = json.NewDecoder(resp.Body).Decode(&mr)
	return resp, mr
}

// TestPingEndpoint: the heartbeat answers the member list (standalone:
// epoch 0, nothing to adopt) and stamps the epoch header fleet-aware
// clients gossip from.
func TestPingEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })

	standalone := newTestServer(t, Config{Store: st})
	resp, err := http.Get(standalone.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	var mr MembershipResponse
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mr.Epoch != 0 || len(mr.Nodes) != 0 {
		t.Fatalf("standalone ping = %+v, want epoch 0 and no nodes", mr)
	}

	self, other := "http://a.invalid", "http://127.0.0.1:1"
	url, _ := newMemberServer(t, st, self, other)
	resp, err = http.Get(url + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&mr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if mr.Epoch != 1 || len(mr.Nodes) != 2 {
		t.Fatalf("fleet ping = %+v, want epoch 1 with 2 nodes", mr)
	}
	if got := resp.Header.Get(codec.EpochHeader); got != "1" {
		t.Fatalf("epoch header = %q, want 1", got)
	}

	if resp, err = http.Post(url+"/v1/ping", "application/json", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST ping status = %d, want 405", resp.StatusCode)
	}
}

// TestMembershipPush: a pushed superseding list is applied (JSON and
// binary alike); a stale push answers the newer local list with
// applied=false; malformed lists are rejected.
func TestMembershipPush(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	self, other := "http://a.invalid", "http://127.0.0.1:1"
	url, fl := newMemberServer(t, st, self, other)

	grown := codec.MemberList{Epoch: 5, Nodes: []string{self, other, "http://127.0.0.1:2"}}
	resp, mr := postJSON(t, url+"/v1/membership", grown)
	if resp.StatusCode != http.StatusOK || !mr.Applied || mr.Epoch != 5 {
		t.Fatalf("push = %d %+v, want applied at epoch 5", resp.StatusCode, mr)
	}
	if fl.Epoch() != 5 {
		t.Fatalf("fleet epoch %d after push, want 5", fl.Epoch())
	}

	// Stale push: not an error — the answer carries the newer list.
	resp, mr = postJSON(t, url+"/v1/membership", codec.MemberList{Epoch: 2, Nodes: []string{self, other}})
	if resp.StatusCode != http.StatusOK || mr.Applied || mr.Epoch != 5 {
		t.Fatalf("stale push = %d %+v, want unapplied with current epoch 5", resp.StatusCode, mr)
	}

	// Binary frame push.
	var enc codec.Encoder
	bin := codec.MemberList{Epoch: 6, Nodes: []string{self, other}}
	req, _ := http.NewRequest(http.MethodPost, url+"/v1/membership", bytes.NewReader(enc.AppendMemberList(nil, &bin)))
	req.Header.Set("Content-Type", codec.ContentType)
	bresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var bmr MembershipResponse
	_ = json.NewDecoder(bresp.Body).Decode(&bmr)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK || !bmr.Applied || fl.Epoch() != 6 {
		t.Fatalf("binary push = %d %+v (fleet epoch %d), want applied at 6", bresp.StatusCode, bmr, fl.Epoch())
	}

	if resp, _ = postJSON(t, url+"/v1/membership", codec.MemberList{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("epoch-0 push status = %d, want 400", resp.StatusCode)
	}

	standalone := newTestServer(t, Config{Store: st})
	if resp, _ = postJSON(t, standalone.URL+"/v1/membership", grown); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("standalone push status = %d, want 404", resp.StatusCode)
	}
}

// TestJoinLeaveEndpoints drives the admin pair: join grows the epoch
// and list, leave shrinks them, the last member cannot leave, and a
// self-leave runs the drain before acknowledging.
func TestJoinLeaveEndpoints(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	self, other := "http://a.invalid", "http://127.0.0.1:1"
	url, fl := newMemberServer(t, st, self, other)

	newcomer := "http://127.0.0.1:2"
	resp, mr := postJSON(t, url+"/v1/join", adminNodeRequest{Node: newcomer})
	if resp.StatusCode != http.StatusOK || mr.Epoch != 2 || len(mr.Nodes) != 3 {
		t.Fatalf("join = %d %+v, want epoch 2 with 3 nodes", resp.StatusCode, mr)
	}
	if !fl.IsMember(newcomer) {
		t.Fatal("fleet does not list the joined node")
	}

	resp, mr = postJSON(t, url+"/v1/leave", adminNodeRequest{Node: newcomer})
	if resp.StatusCode != http.StatusOK || mr.Epoch != 3 || len(mr.Nodes) != 2 {
		t.Fatalf("leave = %d %+v, want epoch 3 with 2 nodes", resp.StatusCode, mr)
	}

	// Self-leave: proposes the shrunk list, then drains (empty store
	// here, so zero pushes) before acknowledging.
	resp, mr = postJSON(t, url+"/v1/leave", adminNodeRequest{Node: self})
	if resp.StatusCode != http.StatusOK || mr.Drained != 0 {
		t.Fatalf("self-leave = %d %+v", resp.StatusCode, mr)
	}
	if fl.OwnsKey("SP|B|60|post-leave") {
		t.Fatal("departed server still claims ownership")
	}

	// The survivor is now alone; removing it must refuse.
	resp, _ = postJSON(t, url+"/v1/leave", adminNodeRequest{Node: other})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("last-member leave status = %d, want 503", resp.StatusCode)
	}

	if resp, _ = postJSON(t, url+"/v1/join", adminNodeRequest{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty join status = %d, want 400", resp.StatusCode)
	}
}

// TestTransferEndpoint: the bootstrap stream serves exactly the shard
// entries the named node owns, in both encodings; naming a stale epoch
// answers 409 with the current membership.
func TestTransferEndpoint(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	self, other := "http://a.invalid", "http://127.0.0.1:1"
	url, fl := newMemberServer(t, st, self, other)

	wantOwned := map[string]bool{}
	for i := 0; i < 40; i++ {
		k := arcs.HistoryKey{App: "BT", Workload: "C", CapW: float64(40 + i%5), Region: fmt.Sprintf("r%d", i)}
		st.Save(k, arcs.ConfigValues{Threads: 1 + i%8}, 1+float64(i%3))
		for _, o := range fl.Owners(k.String(), nil) {
			if o == other {
				wantOwned[k.String()] = true
			}
		}
	}
	if len(wantOwned) == 0 {
		t.Fatal("setup: the peer owns nothing")
	}

	gotJSON := map[string]bool{}
	var binTotal int
	for shard := 0; shard < store.NumShards; shard++ {
		target := fmt.Sprintf("%s/v1/transfer?shard=%d&for=%s&epoch=%d", url, shard, other, fl.Epoch())
		resp, err := http.Get(target)
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Epoch   uint64        `json:"epoch"`
			Entries []store.Entry `json:"entries"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		for _, e := range body.Entries {
			gotJSON[e.Key.String()] = true
		}

		// Binary: one CRC-framed KindRangeTransfer per shard.
		req, _ := http.NewRequest(http.MethodGet, target, nil)
		req.Header.Set("Accept", codec.ContentType)
		bresp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(bresp.Body); err != nil {
			t.Fatal(err)
		}
		bresp.Body.Close()
		kind, payload, _, err := codec.Frame(buf.Bytes())
		if err != nil || kind != codec.KindRangeTransfer {
			t.Fatalf("shard %d: frame kind %#x err %v", shard, kind, err)
		}
		var dec codec.Decoder
		tr, err := dec.DecodeRangeTransfer(payload)
		if err != nil {
			t.Fatal(err)
		}
		if int(tr.Shard) != shard || len(tr.Entries) != len(body.Entries) {
			t.Fatalf("shard %d: binary carries %d entries, JSON %d", shard, len(tr.Entries), len(body.Entries))
		}
		binTotal += len(tr.Entries)
	}
	if len(gotJSON) != len(wantOwned) || binTotal != len(wantOwned) {
		t.Fatalf("transfer served %d JSON / %d binary entries, want %d", len(gotJSON), binTotal, len(wantOwned))
	}
	for ck := range wantOwned {
		if !gotJSON[ck] {
			t.Fatalf("owned key %q missing from transfer", ck)
		}
	}

	// Stale epoch: 409 carrying the current membership.
	resp, err := http.Get(fmt.Sprintf("%s/v1/transfer?shard=0&for=%s&epoch=99", url, other))
	if err != nil {
		t.Fatal(err)
	}
	var mr MembershipResponse
	_ = json.NewDecoder(resp.Body).Decode(&mr)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict || mr.Epoch != fl.Epoch() {
		t.Fatalf("stale-epoch transfer = %d %+v, want 409 with epoch %d", resp.StatusCode, mr, fl.Epoch())
	}

	for _, q := range []string{"shard=-1&for=x&epoch=1", "shard=16&for=x&epoch=1", "shard=0&epoch=1", "shard=0&for=x&epoch=zz"} {
		resp, err := http.Get(url + "/v1/transfer?" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("transfer %q status = %d, want 400", q, resp.StatusCode)
		}
	}

	// The epoch-conflict counter moved.
	mresp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	if !strings.Contains(buf.String(), "arcsd_fleet_transfer_epoch_conflicts_total 1") {
		t.Fatal("metrics missing the transfer epoch-conflict count")
	}
}
