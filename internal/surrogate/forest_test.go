package surrogate

import (
	"math"
	"testing"
)

// synth is a deterministic non-linear target over a small 3-d lattice.
func synth(x []int) float64 {
	return float64((x[0]-4)*(x[0]-4)) + 2*float64((x[1]-1)*(x[1]-1)) +
		0.5*float64((x[2]-5)*(x[2]-5)) + 3*math.Sin(float64(x[0]+x[2]))
}

func gridObserve(f *Forest, stride int) int {
	n := 0
	for a := 0; a < 7; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 9; c++ {
				if (a*36+b*9+c)%stride == 0 {
					f.Observe([]int{a, b, c}, synth([]int{a, b, c}))
					n++
				}
			}
		}
	}
	return n
}

func TestForestFitsSignal(t *testing.T) {
	f := NewForest(3, Options{Seed: 7})
	gridObserve(f, 3) // 84 samples
	f.Fit()
	// The fit must track the signal far better than the constant-mean
	// baseline on the training lattice.
	var sse, sseMean, sum float64
	var n int
	for a := 0; a < 7; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 9; c++ {
				sum += synth([]int{a, b, c})
				n++
			}
		}
	}
	mean := sum / float64(n)
	for a := 0; a < 7; a++ {
		for b := 0; b < 4; b++ {
			for c := 0; c < 9; c++ {
				x := []int{a, b, c}
				y := synth(x)
				pred, _, ok := f.Predict(x)
				if !ok {
					t.Fatal("Predict not ok after Fit")
				}
				sse += (pred - y) * (pred - y)
				sseMean += (mean - y) * (mean - y)
			}
		}
	}
	if sse > 0.3*sseMean {
		t.Errorf("forest SSE %.2f vs mean-baseline SSE %.2f: model did not learn", sse, sseMean)
	}
}

func TestForestDeterministic(t *testing.T) {
	build := func() *Forest {
		f := NewForest(3, Options{Seed: 99})
		gridObserve(f, 5)
		f.Fit()
		return f
	}
	f1, f2 := build(), build()
	for a := 0; a < 7; a++ {
		for c := 0; c < 9; c++ {
			x := []int{a, a % 4, c}
			m1, s1, _ := f1.Predict(x)
			m2, s2, _ := f2.Predict(x)
			if m1 != m2 || s1 != s2 {
				t.Fatalf("prediction at %v differs across identical fits: (%g,%g) vs (%g,%g)",
					x, m1, s1, m2, s2)
			}
		}
	}
	// Refitting the same forest must also be stable.
	f1.Fit()
	m1, s1, _ := f1.Predict([]int{3, 2, 4})
	m2, s2, _ := f2.Predict([]int{3, 2, 4})
	if m1 != m2 || s1 != s2 {
		t.Errorf("refit changed predictions: (%g,%g) vs (%g,%g)", m1, s1, m2, s2)
	}
}

func TestForestObserveCopiesPoint(t *testing.T) {
	f := NewForest(2, Options{Seed: 1})
	x := []int{1, 2}
	f.Observe(x, 5)
	x[0] = 99
	f.Observe([]int{1, 3}, 7)
	f.Fit()
	m, _, ok := f.Predict([]int{1, 2})
	if !ok || math.IsNaN(m) {
		t.Fatalf("Predict = %v, %v", m, ok)
	}
	if f.Len() != 2 {
		t.Errorf("Len = %d", f.Len())
	}
}

func TestPredictBeforeFit(t *testing.T) {
	f := NewForest(3, Options{})
	if _, _, ok := f.Predict([]int{0, 0, 0}); ok {
		t.Error("Predict ok before any Fit")
	}
	f.Observe([]int{1, 1, 1}, 2)
	f.Fit()
	m, s, ok := f.Predict([]int{5, 0, 3})
	if !ok || m != 2 || s != 0 {
		t.Errorf("single-sample fit: mean=%g std=%g ok=%v, want 2, 0, true", m, s, ok)
	}
}

func TestExpectedImprovement(t *testing.T) {
	if ei := ExpectedImprovement(5, 0, 4); ei != 0 {
		t.Errorf("no-uncertainty worse candidate EI = %g, want 0", ei)
	}
	if ei := ExpectedImprovement(3, 0, 4); ei != 1 {
		t.Errorf("deterministic improvement EI = %g, want 1", ei)
	}
	// Symmetric case: mean equals the incumbent, EI = std/sqrt(2*pi).
	got := ExpectedImprovement(4, 1, 4)
	want := 1 / math.Sqrt(2*math.Pi)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("EI at z=0: %g, want %g", got, want)
	}
	// More uncertainty means more expected improvement, monotonically.
	prev := 0.0
	for std := 0.5; std < 8; std += 0.5 {
		ei := ExpectedImprovement(5, std, 4)
		if ei <= prev {
			t.Fatalf("EI not increasing in std: %g at std=%g (prev %g)", ei, std, prev)
		}
		prev = ei
	}
	// EI is always non-negative.
	for mean := -3.0; mean < 10; mean += 0.7 {
		if ei := ExpectedImprovement(mean, 2, 4); ei < 0 {
			t.Fatalf("negative EI %g at mean %g", ei, mean)
		}
	}
}
