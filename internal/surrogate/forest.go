// Package surrogate implements a small, deterministic regression forest
// fit online over search-probe results, plus the expected-improvement
// acquisition rule used to pick the next probe. It is the model behind
// harmony's surrogate strategy (ytopt-style Bayesian optimisation over the
// ARCS lattice): instead of blind simplex moves, candidates are scored by
// how much the model expects them to improve on the incumbent best.
//
// Everything is stdlib-only and deterministic: tree construction seeds a
// private PRNG per tree, split selection breaks ties by (dimension, cut)
// order, and prediction is a pure function of the fitted trees. The same
// observation sequence always yields the same model — the package is under
// the arcslint determinism contract, and batched search sessions replaying
// it must stay byte-identical to serial ones.
package surrogate

import (
	"math"
	"math/rand"
)

// Options tunes a Forest. The zero value selects sensible defaults for
// the tiny sample sizes a tuning search produces (tens of observations).
type Options struct {
	// Trees is the ensemble size; more trees give a smoother uncertainty
	// estimate at linear cost. Default 16.
	Trees int
	// MinLeaf stops splitting nodes at or below this many samples.
	// Default 2.
	MinLeaf int
	// MaxDepth bounds tree depth. Default 8.
	MaxDepth int
	// Seed drives the per-tree bootstrap resampling.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.Trees <= 0 {
		o.Trees = 16
	}
	if o.MinLeaf <= 0 {
		o.MinLeaf = 2
	}
	if o.MaxDepth <= 0 {
		o.MaxDepth = 8
	}
	return o
}

// Forest is a bootstrap-aggregated ensemble of regression trees over
// integer-valued feature vectors (lattice index points). Observe adds a
// sample, Fit (re)builds the ensemble, Predict returns the ensemble mean
// and the cross-tree standard deviation as an uncertainty proxy.
type Forest struct {
	opts  Options
	dims  int
	xs    [][]int
	ys    []float64
	trees []*node
}

// node is one regression-tree node: either a leaf carrying the mean of
// its samples, or a split sending x[dim] <= cut left.
type node struct {
	dim, cut    int
	left, right *node
	leaf        bool
	mean        float64
}

// NewForest creates an empty forest over dims-dimensional points.
func NewForest(dims int, opts Options) *Forest {
	return &Forest{opts: opts.withDefaults(), dims: dims}
}

// Len returns the number of observations.
func (f *Forest) Len() int { return len(f.xs) }

// Observe records one (point, value) sample. The point is copied. Fit
// must be called before predictions reflect it.
func (f *Forest) Observe(x []int, y float64) {
	cp := make([]int, len(x))
	copy(cp, x)
	f.xs = append(f.xs, cp)
	f.ys = append(f.ys, y)
}

// Fit rebuilds the ensemble from the current observations. It is a pure
// function of (observations, options): refitting the same data yields
// byte-identical trees.
func (f *Forest) Fit() {
	n := len(f.xs)
	f.trees = f.trees[:0]
	if n == 0 {
		return
	}
	idx := make([]int, n)
	for t := 0; t < f.opts.Trees; t++ {
		// Private deterministic stream per tree; the odd multiplier keeps
		// neighbouring tree seeds decorrelated.
		rng := rand.New(rand.NewSource(f.opts.Seed + int64(t)*0x9E3779B1 + 1))
		for i := range idx {
			idx[i] = rng.Intn(n)
		}
		f.trees = append(f.trees, f.build(idx, 0))
	}
}

// build grows one tree over the given sample indices.
func (f *Forest) build(idx []int, depth int) *node {
	sum, sumsq := 0.0, 0.0
	for _, i := range idx {
		sum += f.ys[i]
		sumsq += f.ys[i] * f.ys[i]
	}
	n := float64(len(idx))
	mean := sum / n
	sse := sumsq - sum*sum/n
	if len(idx) <= f.opts.MinLeaf || depth >= f.opts.MaxDepth || sse <= 0 {
		return &node{leaf: true, mean: mean}
	}
	bestDim, bestCut, bestScore, found := 0, 0, sse, false
	for d := 0; d < f.dims; d++ {
		dim, cut, score, ok := f.bestSplit(idx, d)
		// Strict improvement with first-wins ties: dimension order (then
		// cut order inside bestSplit) is the deterministic tie-break.
		if ok && score < bestScore {
			bestDim, bestCut, bestScore, found = dim, cut, score, true
		}
	}
	if !found {
		return &node{leaf: true, mean: mean}
	}
	var left, right []int
	for _, i := range idx {
		if f.xs[i][bestDim] <= bestCut {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return &node{leaf: true, mean: mean}
	}
	return &node{
		dim: bestDim, cut: bestCut,
		left:  f.build(left, depth+1),
		right: f.build(right, depth+1),
	}
}

// bestSplit scans dimension d for the cut minimising the post-split SSE.
// Feature values are small lattice indices, so samples are bucketed by
// value and cuts are evaluated in ascending value order (deterministic).
func (f *Forest) bestSplit(idx []int, d int) (dim, cut int, score float64, ok bool) {
	maxV := 0
	for _, i := range idx {
		if v := f.xs[i][d]; v > maxV {
			maxV = v
		}
	}
	sums := make([]float64, maxV+1)
	sqs := make([]float64, maxV+1)
	cnt := make([]int, maxV+1)
	for _, i := range idx {
		v := f.xs[i][d]
		sums[v] += f.ys[i]
		sqs[v] += f.ys[i] * f.ys[i]
		cnt[v]++
	}
	total, totalSq, n := 0.0, 0.0, 0
	for v := range sums {
		total += sums[v]
		totalSq += sqs[v]
		n += cnt[v]
	}
	lSum, lSq := 0.0, 0.0
	lN := 0
	best := math.Inf(1)
	for v := 0; v < maxV; v++ { // cut at v: left is x<=v, so v=maxV is no split
		lSum += sums[v]
		lSq += sqs[v]
		lN += cnt[v]
		if lN == 0 || lN == n {
			continue
		}
		rSum, rSq := total-lSum, totalSq-lSq
		rN := n - lN
		sse := (lSq - lSum*lSum/float64(lN)) + (rSq - rSum*rSum/float64(rN))
		if sse < best {
			best, cut, ok = sse, v, true
		}
	}
	return d, cut, best, ok
}

// Predict returns the ensemble-mean prediction for x and the cross-tree
// standard deviation (the model's uncertainty proxy). ok=false before the
// first Fit over a non-empty sample.
func (f *Forest) Predict(x []int) (mean, std float64, ok bool) {
	if len(f.trees) == 0 {
		return 0, 0, false
	}
	sum, sumsq := 0.0, 0.0
	for _, t := range f.trees {
		v := t.predict(x)
		sum += v
		sumsq += v * v
	}
	n := float64(len(f.trees))
	mean = sum / n
	varc := sumsq/n - mean*mean
	if varc < 0 { // guard tiny negative from cancellation
		varc = 0
	}
	return mean, math.Sqrt(varc), true
}

func (nd *node) predict(x []int) float64 {
	for !nd.leaf {
		if x[nd.dim] <= nd.cut {
			nd = nd.left
		} else {
			nd = nd.right
		}
	}
	return nd.mean
}

// ExpectedImprovement scores a candidate under the standard EI acquisition
// rule for minimisation: the expected amount by which a Gaussian with the
// given mean and std undercuts the incumbent best. A zero-std candidate
// scores its deterministic improvement (if any). Lower perf is better
// everywhere in ARCS, so callers maximise this.
func ExpectedImprovement(mean, std, best float64) float64 {
	if std <= 0 {
		if mean < best {
			return best - mean
		}
		return 0
	}
	z := (best - mean) / std
	return (best-mean)*normCDF(z) + std*normPDF(z)
}

func normCDF(z float64) float64 { return 0.5 * (1 + math.Erf(z/math.Sqrt2)) }

func normPDF(z float64) float64 { return math.Exp(-z*z/2) / math.Sqrt(2*math.Pi) }
