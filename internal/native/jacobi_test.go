package native

import (
	"math"
	"testing"

	"arcs/internal/ompt"
	"arcs/internal/parfor"
)

func TestJacobiValidation(t *testing.T) {
	if _, err := NewJacobi2D(1, nil); err == nil {
		t.Errorf("tiny grid must be rejected")
	}
}

func TestJacobiResidualShrinks(t *testing.T) {
	j, err := NewJacobi2D(32, nil)
	if err != nil {
		t.Fatal(err)
	}
	r0 := j.Residual()
	if err := j.Run(50); err != nil {
		t.Fatal(err)
	}
	r1 := j.Residual()
	if err := j.Run(200); err != nil {
		t.Fatal(err)
	}
	r2 := j.Residual()
	if !(r2 < r1 && r1 < r0) {
		t.Errorf("residual must shrink: %g -> %g -> %g", r0, r1, r2)
	}
}

func TestJacobiConvergesToManufacturedSolution(t *testing.T) {
	j, err := NewJacobi2D(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Jacobi needs O(N^2) sweeps; 24^2 is small enough to converge fully.
	if err := j.Run(3000); err != nil {
		t.Fatal(err)
	}
	if e := j.SolutionError(); e > 5e-3 {
		t.Errorf("solution error %g exceeds discretisation-level tolerance", e)
	}
}

func TestJacobiConfigInvariance(t *testing.T) {
	ref, err := NewJacobi2D(20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(60); err != nil {
		t.Fatal(err)
	}
	want := ref.Residual()

	for _, cfg := range []struct {
		threads int
		sched   ompt.ScheduleKind
		chunk   int
	}{
		{1, ompt.ScheduleStatic, 0},
		{5, ompt.ScheduleDynamic, 2},
		{3, ompt.ScheduleGuided, 1},
	} {
		rt := parfor.NewRuntime(8)
		if err := rt.SetNumThreads(cfg.threads); err != nil {
			t.Fatal(err)
		}
		if err := rt.SetSchedule(cfg.sched, cfg.chunk); err != nil {
			t.Fatal(err)
		}
		j, err := NewJacobi2D(20, rt)
		if err != nil {
			t.Fatal(err)
		}
		if err := j.Run(60); err != nil {
			t.Fatal(err)
		}
		if got := j.Residual(); math.Abs(got-want) > 1e-12*math.Max(1, want) {
			t.Errorf("config %+v changed the solution: %g vs %g", cfg, got, want)
		}
	}
}

func BenchmarkJacobiSweep(b *testing.B) {
	j, err := NewJacobi2D(256, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := j.Sweep(); err != nil {
			b.Fatal(err)
		}
	}
}
