package native

import (
	"math"
	"testing"

	"arcs/internal/apex"
	arcs "arcs/internal/core"
	"arcs/internal/ompt"
	"arcs/internal/parfor"
	"arcs/internal/sim"
)

func TestHeat3DValidation(t *testing.T) {
	if _, err := NewHeat3D(2, nil); err == nil {
		t.Errorf("tiny grid must be rejected")
	}
}

func TestHeat3DAnalyticDecay(t *testing.T) {
	h, err := NewHeat3D(24, nil)
	if err != nil {
		t.Fatal(err)
	}
	before := h.Checksum()
	if err := h.Run(40); err != nil {
		t.Fatal(err)
	}
	after := h.Checksum()
	if after >= before {
		t.Errorf("diffusion must decay the field: %v -> %v", before, after)
	}
	if rel := h.Verify(); rel > 0.05 {
		t.Errorf("analytic verification error %.3f%% exceeds 5%%", rel*100)
	}
}

// The solution must not depend on the parallel configuration: every
// schedule, thread count and chunk choice yields the same field (pencils
// are independent, so this is a strong race/decomposition check).
func TestHeat3DConfigInvariance(t *testing.T) {
	ref, err := NewHeat3D(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Run(10); err != nil {
		t.Fatal(err)
	}
	want := ref.Checksum()

	for _, cfg := range []struct {
		threads int
		sched   ompt.ScheduleKind
		chunk   int
	}{
		{1, ompt.ScheduleStatic, 0},
		{4, ompt.ScheduleDynamic, 1},
		{3, ompt.ScheduleGuided, 2},
		{8, ompt.ScheduleStatic, 5},
	} {
		rt := parfor.NewRuntime(16)
		if err := rt.SetNumThreads(cfg.threads); err != nil {
			t.Fatal(err)
		}
		if err := rt.SetSchedule(cfg.sched, cfg.chunk); err != nil {
			t.Fatal(err)
		}
		h, err := NewHeat3D(16, rt)
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Run(10); err != nil {
			t.Fatal(err)
		}
		if got := h.Checksum(); math.Abs(got-want) > 1e-9*math.Max(1, want) {
			t.Errorf("config %+v changed the solution: %v vs %v", cfg, got, want)
		}
	}
}

// ARCS tunes the real solver end to end: the sweeps are separate OMPT
// regions, each gets its own tuning session against wall-clock time.
func TestARCSTunesHeat3D(t *testing.T) {
	rt := parfor.NewRuntime(8)
	apx := apex.New()
	rt.RegisterTool(apex.NewTool(apx))
	space := arcs.SearchSpace{
		Threads:   []int{1, 2, 4},
		Schedules: []ompt.ScheduleKind{ompt.ScheduleStatic, ompt.ScheduleGuided},
		Chunks:    []int{0, 16},
	}
	tuner, err := arcs.New(apx, sim.Crill(), arcs.Options{
		Strategy: arcs.StrategyOnline, Space: space, MaxEvals: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHeat3D(20, rt)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(15); err != nil {
		t.Fatal(err)
	}
	_ = tuner.Finish()
	reps := tuner.Report()
	if len(reps) != 3 {
		t.Fatalf("expected 3 tuned regions (x/y/z sweeps), got %d", len(reps))
	}
	// Tuning must not corrupt the numerics.
	if rel := h.Verify(); rel > 0.05 {
		t.Errorf("verification failed under tuning: %.3f%%", rel*100)
	}
}

func BenchmarkHeat3DStep(b *testing.B) {
	h, err := NewHeat3D(32, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := h.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
