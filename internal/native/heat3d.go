// Package native provides real (executed, not modelled) numerical kernels
// built on the goroutine parallel-for, so the ARCS tuner can be exercised
// against genuine computation with wall-clock objectives. The flagship is
// an ADI (alternating direction implicit) heat-equation solver whose
// x/y/z line sweeps mirror the structure of NPB SP's pentadiagonal solves
// — the same region shapes the paper tunes, but actually computed.
package native

import (
	"fmt"
	"math"

	"arcs/internal/parfor"
)

// Heat3D solves u_t = alpha * laplacian(u) on the unit cube with Dirichlet
// zero boundaries using ADI line sweeps (Thomas algorithm per pencil). The
// initial condition sin(pi x) sin(pi y) sin(pi z) decays analytically as
// exp(-3 pi^2 alpha t), which Verify checks.
type Heat3D struct {
	N     int     // interior points per dimension
	Alpha float64 // diffusivity
	DT    float64 // time step

	u    []float64 // (N+2)^3 including boundary
	step int

	rt      *parfor.Runtime
	regions [3]*parfor.Region
}

// NewHeat3D allocates and initialises the solver. A nil runtime gets a
// fresh one with default limits.
func NewHeat3D(n int, rt *parfor.Runtime) (*Heat3D, error) {
	if n < 4 {
		return nil, fmt.Errorf("native: grid %d too small (need >= 4)", n)
	}
	if rt == nil {
		rt = parfor.NewRuntime(0)
	}
	h := &Heat3D{
		N:     n,
		Alpha: 0.1,
		DT:    0.1 / float64(n*n), // stable and accurate for ADI
		rt:    rt,
	}
	h.regions[0] = rt.Region("x_sweep")
	h.regions[1] = rt.Region("y_sweep")
	h.regions[2] = rt.Region("z_sweep")
	h.u = make([]float64, (n+2)*(n+2)*(n+2))
	hstep := 1.0 / float64(n+1)
	for i := 0; i <= n+1; i++ {
		for j := 0; j <= n+1; j++ {
			for k := 0; k <= n+1; k++ {
				x, y, z := float64(i)*hstep, float64(j)*hstep, float64(k)*hstep
				h.u[h.idx(i, j, k)] = math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
			}
		}
	}
	return h, nil
}

func (h *Heat3D) idx(i, j, k int) int {
	s := h.N + 2
	return (i*s+j)*s + k
}

// Runtime returns the parfor runtime (attach OMPT tools to it to tune).
func (h *Heat3D) Runtime() *parfor.Runtime { return h.rt }

// Step advances one ADI time step: an implicit line solve along each of
// the three dimensions, each a parallel region over the N*N pencils.
func (h *Heat3D) Step() error {
	n := h.N
	hs := 1.0 / float64(n+1)
	// Lie splitting: each direction's implicit Euler solve carries the
	// full alpha*dt for its own second derivative.
	lambda := h.Alpha * h.DT / (hs * hs)

	for dim := 0; dim < 3; dim++ {
		dim := dim
		_, err := h.rt.ParallelFor(h.regions[dim], n*n, func(p int) {
			pj := p/n + 1
			pk := p%n + 1
			h.solveLine(dim, pj, pk, lambda)
		})
		if err != nil {
			return err
		}
	}
	h.step++
	return nil
}

// solveLine runs the Thomas algorithm along one pencil of dimension dim.
// Each goroutine gets its own scratch (allocated per call; pencils are
// short enough that the allocator cost is negligible next to the solve).
func (h *Heat3D) solveLine(dim, a, b int, lambda float64) {
	n := h.N
	cp := make([]float64, n) // c' coefficients
	dp := make([]float64, n) // d' right-hand side
	at := func(i int) int {
		switch dim {
		case 0:
			return h.idx(i, a, b)
		case 1:
			return h.idx(a, i, b)
		default:
			return h.idx(a, b, i)
		}
	}
	// Tridiagonal system: -lambda u[i-1] + (1+2 lambda) u[i] - lambda u[i+1] = u_old[i]
	diag := 1 + 2*lambda
	cp[0] = -lambda / diag
	dp[0] = (h.u[at(1)] + lambda*h.u[at(0)]) / diag
	for i := 1; i < n; i++ {
		m := diag + lambda*cp[i-1]
		cp[i] = -lambda / m
		rhs := h.u[at(i+1)]
		if i == n-1 {
			rhs += lambda * h.u[at(n+1)]
		}
		dp[i] = (rhs + lambda*dp[i-1]) / m
	}
	// Back substitution.
	h.u[at(n)] = dp[n-1]
	for i := n - 2; i >= 0; i-- {
		h.u[at(i+1)] = dp[i] - cp[i]*h.u[at(i+2)]
	}
}

// Run advances the given number of steps.
func (h *Heat3D) Run(steps int) error {
	for s := 0; s < steps; s++ {
		if err := h.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Verify compares the computed field against the analytic decay of the
// initial mode and returns the maximum relative error at the centre
// region. For the coarse grids and few steps used in tests the ADI scheme
// stays within a few percent.
func (h *Heat3D) Verify() float64 {
	n := h.N
	hs := 1.0 / float64(n+1)
	t := float64(h.step) * h.DT
	decay := math.Exp(-3 * math.Pi * math.Pi * h.Alpha * t)
	maxRel := 0.0
	for _, c := range []int{n / 3, n / 2, 2 * n / 3} {
		for _, d := range []int{n / 3, n / 2, 2 * n / 3} {
			x, y, z := float64(c)*hs, float64(d)*hs, float64(n/2)*hs
			want := decay * math.Sin(math.Pi*x) * math.Sin(math.Pi*y) * math.Sin(math.Pi*z)
			got := h.u[h.idx(c, d, n/2)]
			if math.Abs(want) < 1e-9 {
				continue
			}
			rel := math.Abs(got-want) / math.Abs(want)
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return maxRel
}

// Checksum returns the field's L2 norm (a cheap regression signal).
func (h *Heat3D) Checksum() float64 {
	var s float64
	for _, v := range h.u {
		s += v * v
	}
	return math.Sqrt(s)
}
