package native

import (
	"fmt"
	"math"

	"arcs/internal/parfor"
)

// Jacobi2D solves the 2D Poisson problem -laplacian(u) = f on the unit
// square (Dirichlet zero boundary) with Jacobi iteration — the classic
// memory-bound streaming kernel, complementing Heat3D's compute-leaning
// line solves. The manufactured solution u = sin(pi x) sin(pi y) gives
// f = 2 pi^2 u, so the converged error is checkable analytically.
type Jacobi2D struct {
	N int // interior points per dimension

	u, next, f []float64
	iters      int

	rt     *parfor.Runtime
	region *parfor.Region
}

// NewJacobi2D allocates the problem. A nil runtime gets a fresh one.
func NewJacobi2D(n int, rt *parfor.Runtime) (*Jacobi2D, error) {
	if n < 4 {
		return nil, fmt.Errorf("native: grid %d too small (need >= 4)", n)
	}
	if rt == nil {
		rt = parfor.NewRuntime(0)
	}
	j := &Jacobi2D{
		N:      n,
		u:      make([]float64, (n+2)*(n+2)),
		next:   make([]float64, (n+2)*(n+2)),
		f:      make([]float64, (n+2)*(n+2)),
		rt:     rt,
		region: rt.Region("jacobi_sweep"),
	}
	h := 1.0 / float64(n+1)
	for r := 1; r <= n; r++ {
		for c := 1; c <= n; c++ {
			x, y := float64(r)*h, float64(c)*h
			j.f[j.idx(r, c)] = 2 * math.Pi * math.Pi * math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
		}
	}
	return j, nil
}

func (j *Jacobi2D) idx(r, c int) int { return r*(j.N+2) + c }

// Runtime returns the parfor runtime for tool attachment.
func (j *Jacobi2D) Runtime() *parfor.Runtime { return j.rt }

// Sweep performs one Jacobi iteration over the rows as a parallel region.
func (j *Jacobi2D) Sweep() error {
	n := j.N
	h2 := 1.0 / float64((n+1)*(n+1))
	u, next, f := j.u, j.next, j.f
	_, err := j.rt.ParallelForChunk(j.region, n, func(lo, hi int) {
		for r := lo + 1; r <= hi; r++ {
			base := r * (n + 2)
			for c := 1; c <= n; c++ {
				next[base+c] = 0.25 * (u[base+c-1] + u[base+c+1] +
					u[base+c-(n+2)] + u[base+c+(n+2)] + h2*f[base+c])
			}
		}
	})
	if err != nil {
		return err
	}
	j.u, j.next = j.next, j.u
	j.iters++
	return nil
}

// Run performs the given number of sweeps.
func (j *Jacobi2D) Run(sweeps int) error {
	for s := 0; s < sweeps; s++ {
		if err := j.Sweep(); err != nil {
			return err
		}
	}
	return nil
}

// Residual returns the max-norm of the discrete residual — it must shrink
// monotonically toward discretisation error as sweeps accumulate.
func (j *Jacobi2D) Residual() float64 {
	n := j.N
	h2 := 1.0 / float64((n+1)*(n+1))
	maxr := 0.0
	for r := 1; r <= n; r++ {
		for c := 1; c <= n; c++ {
			i := j.idx(r, c)
			res := j.f[i]*h2 - (4*j.u[i] - j.u[i-1] - j.u[i+1] - j.u[i-(n+2)] - j.u[i+(n+2)])
			if res < 0 {
				res = -res
			}
			if res > maxr {
				maxr = res
			}
		}
	}
	return maxr
}

// SolutionError returns the max-norm error against the manufactured
// solution (meaningful once the iteration has converged).
func (j *Jacobi2D) SolutionError() float64 {
	n := j.N
	h := 1.0 / float64(n+1)
	maxe := 0.0
	for r := 1; r <= n; r++ {
		for c := 1; c <= n; c++ {
			x, y := float64(r)*h, float64(c)*h
			want := math.Sin(math.Pi*x) * math.Sin(math.Pi*y)
			e := math.Abs(j.u[j.idx(r, c)] - want)
			if e > maxe {
				maxe = e
			}
		}
	}
	return maxe
}
