package apex

import (
	"math"
	"testing"

	"arcs/internal/omp"
	"arcs/internal/ompt"
	"arcs/internal/sim"
)

func metrics(timeS, energyJ float64) ompt.Metrics {
	return ompt.Metrics{TimeS: timeS, EnergyJ: energyJ, MeanBusyS: timeS * 0.8, MeanWaitS: timeS * 0.2}
}

func TestProfileAccumulation(t *testing.T) {
	a := New()
	a.StopTimer("r", metrics(1.0, 50))
	a.StopTimer("r", metrics(3.0, 150))
	p := a.Profile("r")
	if p.Calls != 2 {
		t.Errorf("Calls = %d", p.Calls)
	}
	if p.TotalS != 4.0 || p.TotalEnergyJ != 200 {
		t.Errorf("totals wrong: %+v", p)
	}
	if p.MeanS() != 2.0 {
		t.Errorf("MeanS = %v", p.MeanS())
	}
	if p.Time.Min() != 1.0 || p.Time.Max() != 3.0 {
		t.Errorf("Welford min/max wrong")
	}
	if p.Last.TimeS != 3.0 {
		t.Errorf("Last not updated")
	}
	empty := a.Profile("never-stopped")
	if empty.MeanS() != 0 {
		t.Errorf("empty profile MeanS = %v", empty.MeanS())
	}
}

func TestProfilesSortedByTotalTime(t *testing.T) {
	a := New()
	a.StopTimer("small", metrics(1, 0))
	a.StopTimer("big", metrics(10, 0))
	a.StopTimer("mid", metrics(5, 0))
	ps := a.Profiles()
	if len(ps) != 3 || ps[0].Name != "big" || ps[1].Name != "mid" || ps[2].Name != "small" {
		names := make([]string, len(ps))
		for i, p := range ps {
			names[i] = p.Name
		}
		t.Errorf("order = %v", names)
	}
}

func TestCounters(t *testing.T) {
	a := New()
	a.IncrCounter("config_changes", 1)
	a.IncrCounter("config_changes", 2)
	if a.Counter("config_changes") != 3 {
		t.Errorf("counter = %v", a.Counter("config_changes"))
	}
	if a.Counter("missing") != 0 {
		t.Errorf("missing counter must read 0")
	}
}

func TestTimerPolicies(t *testing.T) {
	a := New()
	var starts, stops []string
	a.RegisterPolicy(TimerStart, func(c Context) { starts = append(starts, c.Timer) })
	a.RegisterPolicy(TimerStop, func(c Context) {
		stops = append(stops, c.Timer)
		if c.Metrics.TimeS != 2.5 {
			t.Errorf("stop policy metrics = %+v", c.Metrics)
		}
	})
	a.StartTimer("x_solve", nil)
	a.StopTimer("x_solve", metrics(2.5, 10))
	if len(starts) != 1 || starts[0] != "x_solve" {
		t.Errorf("starts = %v", starts)
	}
	if len(stops) != 1 {
		t.Errorf("stops = %v", stops)
	}
}

func TestDeregisterPolicy(t *testing.T) {
	a := New()
	n := 0
	id := a.RegisterPolicy(TimerStop, func(Context) { n++ })
	a.StopTimer("r", metrics(1, 0))
	a.DeregisterPolicy(id)
	a.DeregisterPolicy(id) // double-remove is a no-op
	a.StopTimer("r", metrics(1, 0))
	if n != 1 {
		t.Errorf("policy fired %d times, want 1", n)
	}
	if a.PolicyCount() != 0 {
		t.Errorf("PolicyCount = %d", a.PolicyCount())
	}
}

func TestPeriodicPolicy(t *testing.T) {
	a := New()
	fired := 0
	a.RegisterPeriodicPolicy(1.0, func(c Context) { fired++ })
	a.StopTimer("r", metrics(0.4, 0)) // t=0.4
	if fired != 0 {
		t.Fatalf("fired too early")
	}
	a.StopTimer("r", metrics(0.7, 0)) // t=1.1
	if fired != 1 {
		t.Errorf("fired = %d after 1.1s, want 1", fired)
	}
	a.StopTimer("r", metrics(2.5, 0)) // t=3.6: catches up periods 2 and 3
	if fired != 3 {
		t.Errorf("fired = %d after 3.6s, want 3", fired)
	}
}

func TestPeriodicPolicyBadPeriod(t *testing.T) {
	a := New()
	fired := 0
	a.RegisterPeriodicPolicy(0, func(Context) { fired++ }) // coerced to 1s
	a.StopTimer("r", metrics(1.5, 0))
	if fired != 1 {
		t.Errorf("fired = %d, want 1", fired)
	}
}

func TestSnapshotWithPowerSource(t *testing.T) {
	m, err := sim.NewMachine(sim.Crill())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPowerCap(70); err != nil {
		t.Fatal(err)
	}
	m.Account(1, 60)
	a := New()
	a.SetPowerSource(m)
	a.StopTimer("r", metrics(2, 100))
	a.IncrCounter("c", 7)
	s := a.State()
	if s.PowerCap != 70 {
		t.Errorf("snapshot cap = %v", s.PowerCap)
	}
	if s.EnergyJ != 60 {
		t.Errorf("snapshot energy = %v", s.EnergyJ)
	}
	if s.NowS != 2 {
		t.Errorf("snapshot clock = %v", s.NowS)
	}
	if ps := s.Profiles["r"]; ps.Calls != 1 || ps.MeanS != 2 {
		t.Errorf("snapshot profile = %+v", ps)
	}
	if s.Counters["c"] != 7 {
		t.Errorf("snapshot counters = %v", s.Counters)
	}
}

func TestSnapshotWithoutPowerSource(t *testing.T) {
	a := New()
	s := a.State()
	if s.PowerCap != 0 || s.EnergyJ != 0 {
		t.Errorf("no power source should read zeros: %+v", s)
	}
}

// Integration: the OMPT adapter drives APEX from a real runtime, and a
// TimerStart policy can reconfigure the region it precedes.
func TestToolIntegration(t *testing.T) {
	m, err := sim.NewMachine(sim.Crill())
	if err != nil {
		t.Fatal(err)
	}
	rt := omp.NewRuntime(m)
	a := New()
	a.SetPowerSource(m)
	a.RegisterPolicy(TimerStart, func(c Context) {
		if c.CP != nil {
			_ = c.CP.SetNumThreads(8)
		}
	})
	rt.RegisterTool(NewTool(a))

	lm := &sim.LoopModel{
		Name: "loop", Iters: 256, CompNSPerIter: 10000,
		Mem: sim.CacheSpec{AccessesPerIter: 50, BytesPerIter: 512, TemporalWindowKB: 8, FootprintMB: 1, MLP: 4},
	}
	mtr, err := rt.Run(rt.Region("x_solve", lm))
	if err != nil {
		t.Fatal(err)
	}
	if mtr.Threads != 8 {
		t.Errorf("policy reconfiguration not applied: %d threads", mtr.Threads)
	}
	p := a.Profile("x_solve")
	if p.Calls != 1 {
		t.Errorf("profile not driven by OMPT adapter: %+v", p)
	}
	if math.Abs(p.TotalS-mtr.TimeS) > 1e-12 {
		t.Errorf("profile time %v != metrics %v", p.TotalS, mtr.TimeS)
	}
}

func TestPowerCapAccessor(t *testing.T) {
	a := New()
	if a.PowerCap() != 0 {
		t.Errorf("no source attached should read 0")
	}
	m, err := sim.NewMachine(sim.Crill())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPowerCap(85); err != nil {
		t.Fatal(err)
	}
	a.SetPowerSource(m)
	if a.PowerCap() != 85 {
		t.Errorf("PowerCap = %v, want 85", a.PowerCap())
	}
}
