package apex

import "arcs/internal/ompt"

// Tool adapts OMPT region events into APEX timer events, completing the
// paper's Fig. 2 pipeline: OpenMP runtime -> OMPT -> APEX introspection ->
// policy engine. The OMPT interface "starts a timer upon entry to an
// OpenMP parallel region and stops that timer upon exit" (§III-B).
type Tool struct {
	apex *Instance
}

// NewTool creates the adapter for an APEX instance.
func NewTool(a *Instance) *Tool { return &Tool{apex: a} }

// ParallelBegin implements ompt.Tool.
func (t *Tool) ParallelBegin(r ompt.RegionInfo, cp ompt.ControlPlane) {
	t.apex.StartTimer(r.Name, cp)
}

// ParallelEnd implements ompt.Tool.
func (t *Tool) ParallelEnd(r ompt.RegionInfo, m ompt.Metrics) {
	t.apex.StopTimer(r.Name, m)
}

var _ ompt.Tool = (*Tool)(nil)
