package apex

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV dumps the profile table in the CSV form real APEX emits at exit
// (one row per timer), suitable for spreadsheets and scripted analysis.
func (a *Instance) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := []string{
		"timer", "calls", "total_s", "mean_s", "min_s", "max_s", "stddev_s",
		"energy_j", "barrier_s", "loop_s", "overhead_s",
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("apex: write csv: %w", err)
	}
	f := func(x float64) string { return strconv.FormatFloat(x, 'g', 9, 64) }
	for _, p := range a.Profiles() {
		row := []string{
			p.Name,
			strconv.Itoa(p.Calls),
			f(p.TotalS),
			f(p.MeanS()),
			f(p.Time.Min()),
			f(p.Time.Max()),
			f(p.Time.Stddev()),
			f(p.TotalEnergyJ),
			f(p.TotalBarrier),
			f(p.TotalLoopS),
			f(p.TotalOverS),
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("apex: write csv: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("apex: write csv: %w", err)
	}
	return nil
}

// WriteReport renders the human-readable end-of-run screen report (the
// paper's APEX prints a similar table at exit).
func (a *Instance) WriteReport(w io.Writer) {
	fmt.Fprintf(w, "%-36s %8s %12s %12s %12s\n", "timer", "calls", "total(s)", "mean(ms)", "energy(J)")
	for _, p := range a.Profiles() {
		fmt.Fprintf(w, "%-36s %8d %12.4f %12.4f %12.2f\n",
			p.Name, p.Calls, p.TotalS, p.MeanS()*1e3, p.TotalEnergyJ)
	}
	if len(a.counters) > 0 {
		fmt.Fprintln(w, "counters:")
		for _, name := range a.counterNames() {
			fmt.Fprintf(w, "  %-34s %g\n", name, a.counters[name])
		}
	}
}

// counterNames returns the counter keys sorted for deterministic output.
func (a *Instance) counterNames() []string {
	names := make([]string, 0, len(a.counters))
	for n := range a.counters {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
