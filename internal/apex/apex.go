// Package apex implements an APEX-style (Autonomic Performance Environment
// for eXascale) measurement and runtime adaptation library (§III-B of the
// paper): introspection through timers and counters, snapshotable state
// including power/energy readings, and a policy engine whose rules are
// callback functions triggered by timer events or fired periodically.
// ARCS is implemented as an APEX policy (internal/core); the OMPT adapter
// in tool.go turns OpenMP region events into APEX timer events.
package apex

import (
	"sort"

	"arcs/internal/ompt"
	"arcs/internal/stats"
)

// Profile accumulates the measurement history of one timer (one OpenMP
// region in the ARCS use).
type Profile struct {
	Name string

	Calls        int
	TotalS       float64
	TotalEnergyJ float64
	TotalBarrier float64
	TotalLoopS   float64
	TotalOverS   float64

	Time stats.Welford // per-call region time distribution

	// Last holds the most recent measurement in full.
	Last ompt.Metrics
}

// MeanS returns the mean per-call time.
func (p *Profile) MeanS() float64 {
	if p.Calls == 0 {
		return 0
	}
	return p.TotalS / float64(p.Calls)
}

// PowerSource is the introspection hook for power state; *sim.Machine
// satisfies it directly.
type PowerSource interface {
	PowerCap() float64
	EnergyJ() float64
}

// Instance is one APEX environment. It is not safe for concurrent use; the
// simulated runtime is single-threaded, as is the OMPT callback stream on
// the master thread of a real run.
type Instance struct {
	profiles map[string]*Profile
	counters map[string]float64
	engine   policyEngine
	power    PowerSource

	clockS float64 // accumulated measured time, drives periodic policies
}

// New creates an empty APEX instance.
func New() *Instance {
	return &Instance{
		profiles: make(map[string]*Profile),
		counters: make(map[string]float64),
	}
}

// SetPowerSource attaches a power/energy introspection source.
func (a *Instance) SetPowerSource(ps PowerSource) { a.power = ps }

// PowerCap reads the current package power limit from the attached source
// (0 when no source is attached). Policies use this cheap accessor on hot
// paths instead of building a full State snapshot.
func (a *Instance) PowerCap() float64 {
	if a.power == nil {
		return 0
	}
	return a.power.PowerCap()
}

// Profile interns and returns the profile for a timer name.
func (a *Instance) Profile(name string) *Profile {
	p, ok := a.profiles[name]
	if !ok {
		p = &Profile{Name: name}
		a.profiles[name] = p
	}
	return p
}

// Profiles returns all profiles sorted by descending total time (the
// paper's Fig. 9 "top five regions" ordering).
func (a *Instance) Profiles() []*Profile {
	out := make([]*Profile, 0, len(a.profiles))
	for _, p := range a.profiles {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalS != out[j].TotalS {
			return out[i].TotalS > out[j].TotalS
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// StartTimer fires TimerStart policies; cp gives them the runtime control
// plane so an adaptation policy (ARCS) can reconfigure the imminent region.
func (a *Instance) StartTimer(name string, cp ompt.ControlPlane) {
	a.engine.fire(Context{
		Event: TimerStart,
		Timer: name,
		CP:    cp,
		Apex:  a,
		NowS:  a.clockS,
	})
}

// StopTimer records the measurement into the profile and fires TimerStop
// policies, then advances the periodic-policy clock.
func (a *Instance) StopTimer(name string, m ompt.Metrics) {
	p := a.Profile(name)
	p.Calls++
	p.TotalS += m.TimeS
	p.TotalEnergyJ += m.EnergyJ
	p.TotalBarrier += m.MeanWaitS
	p.TotalLoopS += m.MeanBusyS
	p.TotalOverS += m.OverheadS
	p.Time.Add(m.TimeS)
	p.Last = m

	a.clockS += m.TimeS
	a.engine.fire(Context{
		Event:   TimerStop,
		Timer:   name,
		Metrics: m,
		Apex:    a,
		NowS:    a.clockS,
	})
	a.engine.tick(a.clockS, a)
}

// IncrCounter adds v to a named counter.
func (a *Instance) IncrCounter(name string, v float64) { a.counters[name] += v }

// Counter reads a named counter (0 if absent).
func (a *Instance) Counter(name string) float64 { return a.counters[name] }

// Snapshot is an introspection view of the current APEX state — what the
// paper calls "the APEX state" that policy rules query.
type Snapshot struct {
	NowS     float64
	PowerCap float64 // 0 if no power source attached
	EnergyJ  float64
	Profiles map[string]ProfileSummary
	Counters map[string]float64
}

// ProfileSummary is the compact per-timer view inside a snapshot.
type ProfileSummary struct {
	Calls   int
	TotalS  float64
	MeanS   float64
	EnergyJ float64
}

// State captures a snapshot.
func (a *Instance) State() Snapshot {
	s := Snapshot{
		NowS:     a.clockS,
		Profiles: make(map[string]ProfileSummary, len(a.profiles)),
		Counters: make(map[string]float64, len(a.counters)),
	}
	if a.power != nil {
		s.PowerCap = a.power.PowerCap()
		s.EnergyJ = a.power.EnergyJ()
	}
	for name, p := range a.profiles {
		s.Profiles[name] = ProfileSummary{
			Calls:   p.Calls,
			TotalS:  p.TotalS,
			MeanS:   p.MeanS(),
			EnergyJ: p.TotalEnergyJ,
		}
	}
	for name, v := range a.counters {
		s.Counters[name] = v
	}
	return s
}
