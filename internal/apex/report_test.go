package apex

import (
	"encoding/csv"
	"strings"
	"testing"
)

func TestWriteCSV(t *testing.T) {
	a := New()
	a.StopTimer("x_solve", metrics(1.5, 100))
	a.StopTimer("x_solve", metrics(2.5, 120))
	a.StopTimer("add", metrics(0.1, 5))

	var sb strings.Builder
	if err := a.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(sb.String())).ReadAll()
	if err != nil {
		t.Fatalf("invalid CSV: %v\n%s", err, sb.String())
	}
	if len(rows) != 3 { // header + 2 timers
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if rows[0][0] != "timer" || len(rows[0]) != 11 {
		t.Errorf("header = %v", rows[0])
	}
	// Sorted by total time descending: x_solve first.
	if rows[1][0] != "x_solve" || rows[2][0] != "add" {
		t.Errorf("row order: %v, %v", rows[1][0], rows[2][0])
	}
	if rows[1][1] != "2" {
		t.Errorf("x_solve calls = %v", rows[1][1])
	}
	if rows[1][2] != "4" { // 1.5 + 2.5
		t.Errorf("x_solve total = %v", rows[1][2])
	}
}

func TestWriteReport(t *testing.T) {
	a := New()
	a.StopTimer("r", metrics(2, 50))
	a.IncrCounter("arcs.trials", 7)
	a.IncrCounter("arcs.cap_changes", 1)
	var sb strings.Builder
	a.WriteReport(&sb)
	out := sb.String()
	for _, want := range []string{"timer", "r", "arcs.trials", "arcs.cap_changes", "7"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Counters are sorted.
	if strings.Index(out, "arcs.cap_changes") > strings.Index(out, "arcs.trials") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}
