package apex

import "arcs/internal/ompt"

// Event enumerates what can trigger a policy rule.
type Event int

const (
	// TimerStart fires before a timed section begins (ARCS reconfigures
	// the runtime here).
	TimerStart Event = iota
	// TimerStop fires after a timed section ends, with its metrics
	// (ARCS reports performance to Active Harmony here).
	TimerStop
	// Periodic fires on the measured-time clock at a registered interval.
	Periodic
)

// Context is the information handed to a policy rule when it fires.
type Context struct {
	Event   Event
	Timer   string       // timer name for TimerStart/TimerStop
	Metrics ompt.Metrics // populated on TimerStop
	CP      ompt.ControlPlane
	Apex    *Instance
	NowS    float64
}

// Policy is a rule: a callback that observes APEX state and may exercise
// control (through Context.CP or any captured handle).
type Policy func(Context)

// PolicyID identifies a registered policy for deregistration.
type PolicyID int

type registeredPolicy struct {
	id      PolicyID
	event   Event
	fn      Policy
	period  float64
	nextDue float64
}

type policyEngine struct {
	policies []registeredPolicy
	nextID   PolicyID
}

// RegisterPolicy attaches a rule to TimerStart or TimerStop events.
func (a *Instance) RegisterPolicy(e Event, fn Policy) PolicyID {
	return a.engine.register(registeredPolicy{event: e, fn: fn})
}

// RegisterPeriodicPolicy attaches a rule fired every periodS seconds of
// measured time.
func (a *Instance) RegisterPeriodicPolicy(periodS float64, fn Policy) PolicyID {
	if periodS <= 0 {
		periodS = 1
	}
	return a.engine.register(registeredPolicy{event: Periodic, fn: fn, period: periodS, nextDue: periodS})
}

// DeregisterPolicy removes a rule; unknown IDs are ignored.
func (a *Instance) DeregisterPolicy(id PolicyID) {
	ps := a.engine.policies
	for i, p := range ps {
		if p.id == id {
			a.engine.policies = append(ps[:i], ps[i+1:]...)
			return
		}
	}
}

// PolicyCount returns the number of registered rules.
func (a *Instance) PolicyCount() int { return len(a.engine.policies) }

func (e *policyEngine) register(p registeredPolicy) PolicyID {
	e.nextID++
	p.id = e.nextID
	e.policies = append(e.policies, p)
	return p.id
}

func (e *policyEngine) fire(ctx Context) {
	for _, p := range e.policies {
		if p.event == ctx.Event {
			p.fn(ctx)
		}
	}
}

// tick fires periodic policies whose deadline has passed, catching up if
// the clock jumped several periods.
func (e *policyEngine) tick(nowS float64, a *Instance) {
	for i := range e.policies {
		p := &e.policies[i]
		if p.event != Periodic {
			continue
		}
		for p.nextDue <= nowS {
			p.fn(Context{Event: Periodic, Apex: a, NowS: nowS})
			p.nextDue += p.period
		}
	}
}
