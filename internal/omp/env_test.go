package omp

import (
	"testing"

	"arcs/internal/ompt"
)

func TestParseScheduleEnv(t *testing.T) {
	cases := []struct {
		in    string
		kind  ompt.ScheduleKind
		chunk int
		ok    bool
	}{
		{"static", ompt.ScheduleStatic, 0, true},
		{"dynamic,64", ompt.ScheduleDynamic, 64, true},
		{"guided, 8", ompt.ScheduleGuided, 8, true},
		{"GUIDED,8", ompt.ScheduleGuided, 8, true},
		{"auto", ompt.ScheduleDefault, 0, true},
		{"static,0", 0, 0, false},
		{"static,-4", 0, 0, false},
		{"static,x", 0, 0, false},
		{"fifo", 0, 0, false},
	}
	for _, c := range cases {
		kind, chunk, err := ParseScheduleEnv(c.in)
		if c.ok && (err != nil || kind != c.kind || chunk != c.chunk) {
			t.Errorf("ParseScheduleEnv(%q) = %v,%d,%v; want %v,%d", c.in, kind, chunk, err, c.kind, c.chunk)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseScheduleEnv(%q) should fail", c.in)
		}
	}
}

func TestApplyEnv(t *testing.T) {
	rt := newRT(t)
	env := EnvFromMap(map[string]string{
		"OMP_NUM_THREADS": "16",
		"OMP_SCHEDULE":    "guided,4",
	})
	if err := rt.ApplyEnv(env); err != nil {
		t.Fatal(err)
	}
	if rt.NumThreads() != 16 {
		t.Errorf("NumThreads = %d", rt.NumThreads())
	}
	k, c := rt.Schedule()
	if k != ompt.ScheduleGuided || c != 4 {
		t.Errorf("Schedule = %v,%d", k, c)
	}
	// Env application must not charge configuration-change overhead.
	m, err := rt.Run(rt.Region("r", testLoop()))
	if err != nil {
		t.Fatal(err)
	}
	if m.OverheadS != 0 {
		t.Errorf("env application charged overhead %v", m.OverheadS)
	}
	if m.Threads != 16 {
		t.Errorf("env threads not applied: %d", m.Threads)
	}
}

func TestApplyEnvClampsThreads(t *testing.T) {
	rt := newRT(t)
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_NUM_THREADS": "999"})); err != nil {
		t.Fatal(err)
	}
	if rt.NumThreads() != rt.MaxThreads() {
		t.Errorf("oversized OMP_NUM_THREADS should clamp to %d, got %d", rt.MaxThreads(), rt.NumThreads())
	}
}

func TestApplyEnvErrors(t *testing.T) {
	rt := newRT(t)
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_NUM_THREADS": "zero"})); err == nil {
		t.Errorf("bad OMP_NUM_THREADS must fail")
	}
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_NUM_THREADS": "0"})); err == nil {
		t.Errorf("OMP_NUM_THREADS=0 must fail")
	}
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_SCHEDULE": "bogus"})); err == nil {
		t.Errorf("bad OMP_SCHEDULE must fail")
	}
	// Unset variables keep defaults.
	if err := rt.ApplyEnv(EnvFromMap(nil)); err != nil {
		t.Errorf("empty env must be fine: %v", err)
	}
}

func TestFreqControlPlane(t *testing.T) {
	rt := newRT(t)
	ladder := rt.FreqLadderGHz()
	if len(ladder) < 2 || ladder[0] != rt.Machine().Arch().MinGHz {
		t.Fatalf("ladder = %v", ladder)
	}
	if err := rt.SetFreqGHz(ladder[0]); err != nil {
		t.Fatal(err)
	}
	m, err := rt.Run(rt.Region("r", testLoop()))
	if err != nil {
		t.Fatal(err)
	}
	if m.FreqGHz != ladder[0] {
		t.Errorf("frequency request not applied: %v", m.FreqGHz)
	}
	if m.OverheadS <= 0 {
		t.Errorf("frequency change must cost overhead")
	}
	if err := rt.SetFreqGHz(99); err == nil {
		t.Errorf("out-of-range frequency must fail")
	}
	if err := rt.SetFreqGHz(0); err != nil {
		t.Errorf("clearing the request must succeed: %v", err)
	}
}

func TestDRAMEnergyInMetrics(t *testing.T) {
	rt := newRT(t)
	m, err := rt.Run(rt.Region("r", testLoop()))
	if err != nil {
		t.Fatal(err)
	}
	if m.DRAMEnergyJ <= 0 {
		t.Errorf("DRAM energy missing from metrics: %+v", m.DRAMEnergyJ)
	}
	if m.DRAMEnergyJ >= m.EnergyJ {
		t.Errorf("DRAM energy %v should be below package energy %v for this loop", m.DRAMEnergyJ, m.EnergyJ)
	}
}

func TestProcBindEnvAndExecution(t *testing.T) {
	rt := newRT(t)
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_PROC_BIND": "close"})); err != nil {
		t.Fatal(err)
	}
	if rt.ProcBind() != ompt.BindClose {
		t.Errorf("ProcBind = %v", rt.ProcBind())
	}
	if err := rt.ApplyEnv(EnvFromMap(map[string]string{"OMP_PROC_BIND": "sideways"})); err == nil {
		t.Errorf("bad OMP_PROC_BIND must fail")
	}

	// Close binding on a capped machine concentrates the budget on fewer
	// cores, so the region clocks higher than with spread.
	if err := rt.Machine().SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetNumThreads(16); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProcBind(ompt.BindClose); err != nil {
		t.Fatal(err)
	}
	closeM, err := rt.Run(rt.Region("r", testLoop()))
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.SetProcBind(ompt.BindSpread); err != nil {
		t.Fatal(err)
	}
	spreadM, err := rt.Run(rt.Region("r", nil))
	if err != nil {
		t.Fatal(err)
	}
	if closeM.FreqGHz <= spreadM.FreqGHz {
		t.Errorf("close binding must clock higher under a cap: %v vs %v",
			closeM.FreqGHz, spreadM.FreqGHz)
	}
	if err := rt.SetProcBind(ompt.BindKind(42)); err == nil {
		t.Errorf("unknown bind kind must fail")
	}
}
