// Package omp implements an OpenMP-style runtime on top of the simulated
// machine: internal control variables (ICVs), parallel regions with
// worksharing loops under static/dynamic/guided scheduling, the implicit
// barrier, and the OMPT tool hooks ARCS attaches to. It mirrors the
// reference Intel runtime with OMPT support the paper uses (§III-A, §IV-B):
//
//   - tools see ParallelBegin/ParallelEnd events bracketing each region;
//   - omp_set_num_threads / omp_set_schedule mutate ICVs between regions
//     and cost real time (the paper's configuration-changing overhead);
//   - registered tools cost instrumentation time per region call;
//   - the default configuration is the one the paper compares against:
//     maximum hardware threads, static schedule, iterations/threads chunks.
package omp

import (
	"fmt"

	"arcs/internal/ompt"
	"arcs/internal/sim"
)

// ICV holds the OpenMP internal control variables ARCS tunes.
type ICV struct {
	// NumThreads is the team size; 0 selects the default (all hardware
	// threads, as in the paper's baseline).
	NumThreads int
	// Schedule and Chunk form the run-sched-var. ScheduleDefault with
	// Chunk 0 is the compiled-in default (static, iterations/threads).
	Schedule ompt.ScheduleKind
	Chunk    int
	// Bind is the proc-bind-var (OMP_PROC_BIND); default is spread.
	Bind ompt.BindKind
}

// Region is one OpenMP parallel region: a stable identity (OMPT RegionID)
// plus the workload model executed on each invocation. The workload may be
// swapped between invocations (workload size changes across time steps).
type Region struct {
	info  ompt.RegionInfo
	model *sim.LoopModel
}

// Name returns the region's source-level label.
func (r *Region) Name() string { return r.info.Name }

// ID returns the OMPT region identifier.
func (r *Region) ID() ompt.RegionID { return r.info.ID }

// Invocations returns how many times the region has executed.
func (r *Region) Invocations() int { return r.info.Invocation }

// Model returns the current workload model.
func (r *Region) Model() *sim.LoopModel { return r.model }

// SetModel replaces the workload model for subsequent invocations.
func (r *Region) SetModel(m *sim.LoopModel) { r.model = m }

// Runtime is the OpenMP runtime instance bound to one machine.
type Runtime struct {
	mach    *sim.Machine
	tools   ompt.Mux
	icv     ICV
	nextID  ompt.RegionID
	regions map[string]*Region

	// pendingOverheadS accumulates the cost of control-plane calls made
	// since the last region execution; it is charged (as single-core
	// runtime work) when the next region starts, which is when the real
	// runtime performs the reconfiguration.
	pendingOverheadS float64
}

// NewRuntime creates a runtime on the given machine.
func NewRuntime(m *sim.Machine) *Runtime {
	return &Runtime{mach: m, regions: make(map[string]*Region)}
}

// Machine returns the underlying machine (for RAPL access etc.).
func (rt *Runtime) Machine() *sim.Machine { return rt.mach }

// RegisterTool attaches an OMPT tool. Registering at least one tool enables
// the per-region instrumentation overhead, as with a real OMPT tool.
func (rt *Runtime) RegisterTool(t ompt.Tool) { rt.tools.Register(t) }

// Region interns a parallel region by name, creating it on first use. The
// model is attached on creation and updated on subsequent calls if non-nil.
func (rt *Runtime) Region(name string, model *sim.LoopModel) *Region {
	if r, ok := rt.regions[name]; ok {
		if model != nil {
			r.model = model
		}
		return r
	}
	rt.nextID++
	r := &Region{info: ompt.RegionInfo{ID: rt.nextID, Name: name}, model: model}
	rt.regions[name] = r
	return r
}

// Regions returns all interned regions (unspecified order).
func (rt *Runtime) Regions() []*Region {
	out := make([]*Region, 0, len(rt.regions))
	for _, r := range rt.regions {
		out = append(out, r)
	}
	return out
}

// --- Control plane (ompt.ControlPlane) ---

// configChangeCallS is the cost of one ICV-setting runtime call; the paper
// measures the pair (threads + schedule) at ConfigChangeS per region call.
func (rt *Runtime) configChangeCallS() float64 { return rt.mach.Arch().ConfigChangeS / 2 }

// SetNumThreads implements omp_set_num_threads: validates the team size
// and charges half of the configuration-change overhead.
func (rt *Runtime) SetNumThreads(n int) error {
	if n < 0 || n > rt.MaxThreads() {
		return fmt.Errorf("omp: num_threads %d out of range [0, %d]", n, rt.MaxThreads())
	}
	rt.icv.NumThreads = n
	rt.pendingOverheadS += rt.configChangeCallS()
	return nil
}

// SetSchedule implements omp_set_schedule.
func (rt *Runtime) SetSchedule(kind ompt.ScheduleKind, chunk int) error {
	switch kind {
	case ompt.ScheduleDefault, ompt.ScheduleStatic, ompt.ScheduleDynamic, ompt.ScheduleGuided:
	default:
		return fmt.Errorf("omp: unknown schedule kind %v", kind)
	}
	if chunk < 0 {
		return fmt.Errorf("omp: negative chunk %d", chunk)
	}
	rt.icv.Schedule = kind
	rt.icv.Chunk = chunk
	rt.pendingOverheadS += rt.configChangeCallS()
	return nil
}

// NumThreads returns the current num-threads ICV (0 = default).
func (rt *Runtime) NumThreads() int { return rt.icv.NumThreads }

// Schedule returns the current run-sched ICV.
func (rt *Runtime) Schedule() (ompt.ScheduleKind, int) { return rt.icv.Schedule, rt.icv.Chunk }

// MaxThreads returns the hardware thread limit.
func (rt *Runtime) MaxThreads() int { return rt.mach.Arch().HWThreads() }

// SetFreqGHz implements the optional DVFS control plane (ompt
// FreqController, the paper's §VII future work): it requests a frequency
// ceiling below the governor's choice. Like the other ICV calls it costs
// half a configuration change.
func (rt *Runtime) SetFreqGHz(ghz float64) error {
	if err := rt.mach.SetUserFreqGHz(ghz); err != nil {
		return err
	}
	rt.pendingOverheadS += rt.configChangeCallS()
	return nil
}

// FreqLadderGHz returns the machine's DVFS operating points.
func (rt *Runtime) FreqLadderGHz() []float64 { return rt.mach.Arch().FreqLadder() }

// SetProcBind implements the optional placement control plane
// (OMP_PROC_BIND). Like other ICV calls it costs half a config change.
func (rt *Runtime) SetProcBind(b ompt.BindKind) error {
	switch b {
	case ompt.BindDefault, ompt.BindSpread, ompt.BindClose:
	default:
		return fmt.Errorf("omp: unknown proc-bind kind %v", b)
	}
	rt.icv.Bind = b
	rt.pendingOverheadS += rt.configChangeCallS()
	return nil
}

// ProcBind returns the current proc-bind ICV.
func (rt *Runtime) ProcBind() ompt.BindKind { return rt.icv.Bind }

var (
	_ ompt.ControlPlane   = (*Runtime)(nil)
	_ ompt.FreqController = (*Runtime)(nil)
	_ ompt.BindController = (*Runtime)(nil)
)

// --- Execution ---

// resolve maps the ICVs onto a simulator configuration.
func (rt *Runtime) resolve() sim.Config {
	t := rt.icv.NumThreads
	if t == 0 {
		t = rt.MaxThreads()
	}
	var sched sim.Schedule
	switch rt.icv.Schedule {
	case ompt.ScheduleDynamic:
		sched = sim.SchedDynamic
	case ompt.ScheduleGuided:
		sched = sim.SchedGuided
	default: // static and default
		sched = sim.SchedStatic
	}
	bind := sim.BindSpread
	if rt.icv.Bind == ompt.BindClose {
		bind = sim.BindClose
	}
	return sim.Config{Threads: t, Sched: sched, Chunk: rt.icv.Chunk, Bind: bind}
}

// Run executes the region once under the current ICVs, firing OMPT events
// and charging pending configuration-change plus instrumentation overheads.
func (rt *Runtime) Run(r *Region) (ompt.Metrics, error) {
	if r == nil || r.model == nil {
		return ompt.Metrics{}, fmt.Errorf("omp: region without workload model")
	}
	r.info.Invocation++

	// Tools may reconfigure the runtime for this invocation.
	rt.tools.ParallelBegin(r.info, rt)

	overhead := rt.pendingOverheadS
	rt.pendingOverheadS = 0
	if rt.tools.Len() > 0 {
		overhead += rt.mach.Arch().InstrumentS
	}

	t0, e0, d0 := rt.mach.Now(), rt.mach.EnergyJ(), rt.mach.DRAMEnergyJ()
	rt.mach.AccountOverhead(overhead)
	cfg := rt.resolve()
	res, err := rt.mach.ExecuteLoop(r.model, cfg)
	if err != nil {
		return ompt.Metrics{}, fmt.Errorf("omp: region %q: %w", r.info.Name, err)
	}
	t1, e1, d1 := rt.mach.Now(), rt.mach.EnergyJ(), rt.mach.DRAMEnergyJ()

	meanBusy, meanWait := 0.0, 0.0
	for i := range res.PerThreadBusyS {
		meanBusy += res.PerThreadBusyS[i]
		meanWait += res.PerThreadWaitS[i]
	}
	meanBusy /= float64(cfg.Threads)
	meanWait /= float64(cfg.Threads)

	m := ompt.Metrics{
		TimeS:       t1 - t0,
		EnergyJ:     e1 - e0,
		AvgPowerW:   (e1 - e0) / (t1 - t0),
		DRAMEnergyJ: d1 - d0,
		Threads:     cfg.Threads,
		Schedule:    rt.icv.Schedule,
		Chunk:       rt.icv.Chunk,
		FreqGHz:     res.FreqGHz,
		L1Miss:      res.Miss.L1,
		L2Miss:      res.Miss.L2,
		L3Miss:      res.Miss.L3,
		LoopS:       res.LoopS,
		MeanBusyS:   meanBusy,
		BarrierS:    res.BarrierS,
		MeanWaitS:   meanWait,
		SerialS:     res.SerialS,
		OverheadS:   overhead,
	}

	// Synthetic per-thread event stream for tracing tools.
	for i := 0; i < cfg.Threads; i++ {
		rt.tools.Event(r.info, ompt.EventImplicitTask, i, res.TimeS)
		rt.tools.Event(r.info, ompt.EventLoop, i, res.PerThreadBusyS[i])
		rt.tools.Event(r.info, ompt.EventBarrier, i, res.PerThreadWaitS[i])
	}

	rt.tools.ParallelEnd(r.info, m)
	return m, nil
}

// DefaultICV returns the paper's baseline configuration for this machine:
// maximum hardware threads, static schedule, default chunking.
func (rt *Runtime) DefaultICV() ICV {
	return ICV{NumThreads: rt.MaxThreads(), Schedule: ompt.ScheduleStatic, Chunk: 0}
}

// ResetICV restores the default configuration without charging overhead
// (used between experiment arms, not during measured runs).
func (rt *Runtime) ResetICV() {
	rt.icv = ICV{}
	rt.pendingOverheadS = 0
}
