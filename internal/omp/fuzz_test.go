package omp

import "testing"

// FuzzParseScheduleEnv checks the OMP_SCHEDULE parser never panics and
// only accepts values that round-trip to a valid kind.
func FuzzParseScheduleEnv(f *testing.F) {
	for _, seed := range []string{
		"static", "dynamic,64", "guided, 8", "auto", "", ",", "static,",
		"STATIC,1", "guided,99999999999999999999", "dynamic,-1", "x,y,z",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, v string) {
		kind, chunk, err := ParseScheduleEnv(v)
		if err != nil {
			return
		}
		if chunk < 0 {
			t.Fatalf("accepted negative chunk %d from %q", chunk, v)
		}
		switch kind.String() {
		case "static", "dynamic", "guided", "default":
		default:
			t.Fatalf("accepted invalid kind %v from %q", kind, v)
		}
	})
}
