package omp

import (
	"fmt"
	"strconv"
	"strings"

	"arcs/internal/ompt"
)

// env.go implements the OpenMP environment-variable surface the paper used
// for its initial exhaustive parameterisation (§III: "the NPB 3.3-OMP-C
// OpenMP benchmarks were exhaustively parameterized to explore the full
// search space for the OpenMP environment variables OMP_NUM_THREADS and
// OMP_SCHEDULE"). Environment application happens at startup, before any
// region runs, so it does not charge the configuration-change overhead.

// ParseScheduleEnv parses an OMP_SCHEDULE value: "kind[,chunk]" with kind
// in {static, dynamic, guided, auto}; "auto" maps to the runtime default.
func ParseScheduleEnv(v string) (ompt.ScheduleKind, int, error) {
	parts := strings.SplitN(v, ",", 2)
	kindStr := strings.TrimSpace(strings.ToLower(parts[0]))
	var kind ompt.ScheduleKind
	switch kindStr {
	case "static":
		kind = ompt.ScheduleStatic
	case "dynamic":
		kind = ompt.ScheduleDynamic
	case "guided":
		kind = ompt.ScheduleGuided
	case "auto":
		kind = ompt.ScheduleDefault
	default:
		return 0, 0, fmt.Errorf("omp: OMP_SCHEDULE: unknown kind %q", kindStr)
	}
	chunk := 0
	if len(parts) == 2 {
		c, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return 0, 0, fmt.Errorf("omp: OMP_SCHEDULE: bad chunk %q", parts[1])
		}
		if c < 1 {
			return 0, 0, fmt.Errorf("omp: OMP_SCHEDULE: chunk %d must be >= 1", c)
		}
		chunk = c
	}
	return kind, chunk, nil
}

// ApplyEnv initialises the ICVs from environment-variable values supplied
// by lookup (pass os.LookupEnv for the real environment). Recognised:
// OMP_NUM_THREADS, OMP_SCHEDULE. Unset variables keep defaults; invalid
// values are errors (matching strict runtimes rather than the silently
// forgiving ones).
func (rt *Runtime) ApplyEnv(lookup func(string) (string, bool)) error {
	if v, ok := lookup("OMP_NUM_THREADS"); ok {
		n, err := strconv.Atoi(strings.TrimSpace(v))
		if err != nil || n < 1 {
			return fmt.Errorf("omp: OMP_NUM_THREADS: invalid value %q", v)
		}
		if n > rt.MaxThreads() {
			// Real runtimes clamp to the hardware limit.
			n = rt.MaxThreads()
		}
		rt.icv.NumThreads = n
	}
	if v, ok := lookup("OMP_SCHEDULE"); ok {
		kind, chunk, err := ParseScheduleEnv(v)
		if err != nil {
			return err
		}
		rt.icv.Schedule = kind
		rt.icv.Chunk = chunk
	}
	if v, ok := lookup("OMP_PROC_BIND"); ok {
		switch strings.ToLower(strings.TrimSpace(v)) {
		case "spread", "true":
			rt.icv.Bind = ompt.BindSpread
		case "close":
			rt.icv.Bind = ompt.BindClose
		case "false":
			rt.icv.Bind = ompt.BindDefault
		default:
			return fmt.Errorf("omp: OMP_PROC_BIND: unknown value %q", v)
		}
	}
	return nil
}

// EnvFromMap adapts a plain map to the lookup signature, for tests and
// sweep drivers.
func EnvFromMap(m map[string]string) func(string) (string, bool) {
	return func(k string) (string, bool) {
		v, ok := m[k]
		return v, ok
	}
}
