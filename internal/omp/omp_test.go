package omp

import (
	"math"
	"testing"

	"arcs/internal/ompt"
	"arcs/internal/sim"
)

func testLoop() *sim.LoopModel {
	return &sim.LoopModel{
		Name:          "loop",
		Iters:         512,
		CompNSPerIter: 20000,
		Imbalance:     sim.Imbalance{Kind: sim.Ramp, Param: 1},
		Mem: sim.CacheSpec{
			AccessesPerIter:  200,
			BytesPerIter:     1024,
			TemporalWindowKB: 16,
			FootprintMB:      4,
			MLP:              4,
		},
	}
}

func newRT(t *testing.T) *Runtime {
	t.Helper()
	m, err := sim.NewMachine(sim.Crill())
	if err != nil {
		t.Fatal(err)
	}
	return NewRuntime(m)
}

func TestRegionInterning(t *testing.T) {
	rt := newRT(t)
	a := rt.Region("x_solve", testLoop())
	b := rt.Region("x_solve", nil)
	if a != b {
		t.Errorf("same name must intern to same region")
	}
	c := rt.Region("y_solve", testLoop())
	if c == a {
		t.Errorf("different names must differ")
	}
	if a.ID() == c.ID() {
		t.Errorf("region IDs must be unique")
	}
	if len(rt.Regions()) != 2 {
		t.Errorf("Regions() = %d entries, want 2", len(rt.Regions()))
	}
}

func TestRunDefaultConfig(t *testing.T) {
	rt := newRT(t)
	r := rt.Region("r", testLoop())
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Threads != 32 {
		t.Errorf("default must use all 32 hardware threads, got %d", m.Threads)
	}
	if m.TimeS <= 0 || m.EnergyJ <= 0 {
		t.Errorf("bad metrics: %+v", m)
	}
	if m.OverheadS != 0 {
		t.Errorf("no tool, no ICV calls: overhead must be 0, got %v", m.OverheadS)
	}
	if r.Invocations() != 1 {
		t.Errorf("invocation count = %d", r.Invocations())
	}
}

func TestControlPlaneValidation(t *testing.T) {
	rt := newRT(t)
	if err := rt.SetNumThreads(16); err != nil {
		t.Fatal(err)
	}
	if rt.NumThreads() != 16 {
		t.Errorf("NumThreads = %d", rt.NumThreads())
	}
	if err := rt.SetNumThreads(33); err == nil {
		t.Errorf("oversubscription must be rejected")
	}
	if err := rt.SetNumThreads(-1); err == nil {
		t.Errorf("negative threads must be rejected")
	}
	if err := rt.SetSchedule(ompt.ScheduleGuided, 8); err != nil {
		t.Fatal(err)
	}
	k, c := rt.Schedule()
	if k != ompt.ScheduleGuided || c != 8 {
		t.Errorf("Schedule = %v,%d", k, c)
	}
	if err := rt.SetSchedule(ompt.ScheduleKind(42), 1); err == nil {
		t.Errorf("bad schedule kind must be rejected")
	}
	if err := rt.SetSchedule(ompt.ScheduleStatic, -2); err == nil {
		t.Errorf("negative chunk must be rejected")
	}
	if rt.MaxThreads() != 32 {
		t.Errorf("MaxThreads = %d", rt.MaxThreads())
	}
}

func TestConfigChangeOverheadCharged(t *testing.T) {
	rt := newRT(t)
	r := rt.Region("r", testLoop())
	if err := rt.SetNumThreads(16); err != nil {
		t.Fatal(err)
	}
	if err := rt.SetSchedule(ompt.ScheduleGuided, 4); err != nil {
		t.Fatal(err)
	}
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	want := rt.Machine().Arch().ConfigChangeS
	if math.Abs(m.OverheadS-want) > 1e-12 {
		t.Errorf("overhead = %v, want full config change %v", m.OverheadS, want)
	}
	// Overhead is charged once, not carried to the next run.
	m2, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if m2.OverheadS != 0 {
		t.Errorf("second run without ICV calls should have no overhead, got %v", m2.OverheadS)
	}
}

type countingTool struct {
	begins, ends int
	setThreads   int
}

func (c *countingTool) ParallelBegin(r ompt.RegionInfo, cp ompt.ControlPlane) {
	c.begins++
	if c.setThreads > 0 {
		_ = cp.SetNumThreads(c.setThreads)
	}
}
func (c *countingTool) ParallelEnd(r ompt.RegionInfo, m ompt.Metrics) { c.ends++ }

func TestToolCallbacksAndInstrumentation(t *testing.T) {
	rt := newRT(t)
	tool := &countingTool{}
	rt.RegisterTool(tool)
	r := rt.Region("r", testLoop())
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if tool.begins != 1 || tool.ends != 1 {
		t.Errorf("callbacks: begins=%d ends=%d", tool.begins, tool.ends)
	}
	if m.OverheadS < rt.Machine().Arch().InstrumentS {
		t.Errorf("instrumentation overhead missing: %v", m.OverheadS)
	}
}

func TestToolReconfiguresCurrentInvocation(t *testing.T) {
	rt := newRT(t)
	tool := &countingTool{setThreads: 8}
	rt.RegisterTool(tool)
	r := rt.Region("r", testLoop())
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.Threads != 8 {
		t.Errorf("tool's SetNumThreads must apply to the same invocation, got %d threads", m.Threads)
	}
	// The tool's ICV call costs configuration-change overhead.
	if m.OverheadS <= rt.Machine().Arch().InstrumentS {
		t.Errorf("config change by tool must be charged, overhead = %v", m.OverheadS)
	}
}

type eventCounter struct {
	countingTool
	events map[ompt.Event]int
}

func (e *eventCounter) Event(r ompt.RegionInfo, ev ompt.Event, thread int, durS float64) {
	if e.events == nil {
		e.events = make(map[ompt.Event]int)
	}
	e.events[ev]++
}

func TestEventStream(t *testing.T) {
	rt := newRT(t)
	ec := &eventCounter{}
	rt.RegisterTool(ec)
	if err := rt.SetNumThreads(4); err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Run(rt.Region("r", testLoop())); err != nil {
		t.Fatal(err)
	}
	for _, ev := range []ompt.Event{ompt.EventImplicitTask, ompt.EventLoop, ompt.EventBarrier} {
		if ec.events[ev] != 4 {
			t.Errorf("%v fired %d times, want 4 (one per thread)", ev, ec.events[ev])
		}
	}
}

func TestMetricsEnergyMatchesMachine(t *testing.T) {
	rt := newRT(t)
	r := rt.Region("r", testLoop())
	e0 := rt.Machine().EnergyJ()
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs((rt.Machine().EnergyJ() - e0) - m.EnergyJ); diff > 1e-9 {
		t.Errorf("metrics energy %v inconsistent with machine accounting (diff %v)", m.EnergyJ, diff)
	}
}

func TestRunErrors(t *testing.T) {
	rt := newRT(t)
	if _, err := rt.Run(nil); err == nil {
		t.Errorf("nil region must error")
	}
	if _, err := rt.Run(rt.Region("empty", nil)); err == nil {
		t.Errorf("region without model must error")
	}
}

func TestScheduleKindsMapToSimulator(t *testing.T) {
	rt := newRT(t)
	r := rt.Region("r", testLoop())
	for _, k := range []ompt.ScheduleKind{ompt.ScheduleDefault, ompt.ScheduleStatic, ompt.ScheduleDynamic, ompt.ScheduleGuided} {
		if err := rt.SetSchedule(k, 2); err != nil {
			t.Fatal(err)
		}
		m, err := rt.Run(r)
		if err != nil {
			t.Fatalf("%v: %v", k, err)
		}
		if m.Schedule != k {
			t.Errorf("metrics schedule = %v, want %v", m.Schedule, k)
		}
	}
}

func TestWorkloadSwap(t *testing.T) {
	rt := newRT(t)
	small := testLoop()
	big := testLoop()
	big.Iters = 4096
	r := rt.Region("r", small)
	m1, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	r.SetModel(big)
	m2, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TimeS <= m1.TimeS {
		t.Errorf("larger workload must take longer: %v vs %v", m2.TimeS, m1.TimeS)
	}
}

func TestDefaultICVAndReset(t *testing.T) {
	rt := newRT(t)
	def := rt.DefaultICV()
	if def.NumThreads != 32 || def.Schedule != ompt.ScheduleStatic || def.Chunk != 0 {
		t.Errorf("DefaultICV = %+v", def)
	}
	_ = rt.SetNumThreads(4)
	rt.ResetICV()
	if rt.NumThreads() != 0 {
		t.Errorf("ResetICV must restore defaults")
	}
	r := rt.Region("r", testLoop())
	m, err := rt.Run(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.OverheadS != 0 {
		t.Errorf("ResetICV must clear pending overhead, got %v", m.OverheadS)
	}
}
