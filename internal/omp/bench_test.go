package omp

import (
	"testing"

	"arcs/internal/apex"
	"arcs/internal/ompt"
	"arcs/internal/sim"
)

// Benchmarks for the runtime layer: one region execution through the full
// OMPT/APEX path, with and without tools attached — bounding the framework
// cost on top of the raw simulation.

func benchRuntime(b *testing.B, attachTools bool) {
	m, err := sim.NewMachine(sim.Crill())
	if err != nil {
		b.Fatal(err)
	}
	rt := NewRuntime(m)
	if attachTools {
		apx := apex.New()
		apx.SetPowerSource(m)
		apx.RegisterPolicy(apex.TimerStart, func(c apex.Context) {
			if c.CP != nil {
				_ = c.CP.SetNumThreads(16)
				_ = c.CP.SetSchedule(ompt.ScheduleGuided, 8)
			}
		})
		rt.RegisterTool(apex.NewTool(apx))
	}
	region := rt.Region("bench", &sim.LoopModel{
		Name: "bench", Iters: 4096, CompNSPerIter: 15000,
		Imbalance: sim.Imbalance{Kind: sim.Ramp, Param: 0.8},
		Mem: sim.CacheSpec{
			AccessesPerIter: 800, BytesPerIter: 4096, TemporalWindowKB: 256,
			FootprintMB: 64, BoundaryLines: 16, PassesPerChunk: 2, L3Contention: 0.8, MLP: 3,
		},
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Run(region); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRegionRunBare(b *testing.B)      { benchRuntime(b, false) }
func BenchmarkRegionRunWithTools(b *testing.B) { benchRuntime(b, true) }
