package sim

import (
	"math"
	"testing"
)

func TestSetUserFreq(t *testing.T) {
	m := newCrill(t)
	a := m.Arch()
	if err := m.SetUserFreqGHz(1.8); err != nil {
		t.Fatal(err)
	}
	if m.UserFreqGHz() != 1.8 {
		t.Errorf("UserFreqGHz = %v", m.UserFreqGHz())
	}
	f, duty := m.FreqAt(16)
	if f != 1.8 || duty != 1 {
		t.Errorf("user request must cap the governor at TDP: f=%v duty=%v", f, duty)
	}
	// Under a tight cap the governor may already be below the request.
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	if err := m.SetUserFreqGHz(2.2); err != nil {
		t.Fatal(err)
	}
	f55, _ := m.FreqAt(16)
	if f55 >= 2.2 {
		t.Errorf("cap-bound frequency %v must stay below a higher user request", f55)
	}
	// Clearing restores governor control.
	if err := m.SetPowerCap(0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetUserFreqGHz(0); err != nil {
		t.Fatal(err)
	}
	f, _ = m.FreqAt(16)
	if f != a.BaseGHz {
		t.Errorf("cleared request must restore base frequency, got %v", f)
	}
}

func TestSetUserFreqValidation(t *testing.T) {
	m := newCrill(t)
	if err := m.SetUserFreqGHz(0.5); err == nil {
		t.Errorf("below MinGHz must fail")
	}
	if err := m.SetUserFreqGHz(3.5); err == nil {
		t.Errorf("above BaseGHz must fail")
	}
}

func TestFreqLadder(t *testing.T) {
	a := Crill()
	ladder := a.FreqLadder()
	if len(ladder) != 6 {
		t.Fatalf("ladder = %v", ladder)
	}
	if ladder[0] != a.MinGHz || math.Abs(ladder[len(ladder)-1]-a.BaseGHz) > 1e-12 {
		t.Errorf("ladder endpoints wrong: %v", ladder)
	}
	for i := 1; i < len(ladder); i++ {
		if ladder[i] <= ladder[i-1] {
			t.Errorf("ladder must ascend: %v", ladder)
		}
	}
}

func TestUserFreqSavesEnergy(t *testing.T) {
	// A memory-leaning loop at reduced frequency: small time penalty, big
	// package-energy saving (cubic power law) — the §VII DVFS story.
	m := newCrill(t)
	lm := memLoop()
	cfg := Config{Threads: 16, Sched: SchedStatic}
	base := probe(t, m, lm, cfg)
	if err := m.SetUserFreqGHz(1.68); err != nil {
		t.Fatal(err)
	}
	slow := probe(t, m, lm, cfg)
	if slow.FreqGHz != 1.68 {
		t.Fatalf("frequency not applied: %v", slow.FreqGHz)
	}
	timePenalty := slow.TimeS/base.TimeS - 1
	energyGain := 1 - slow.EnergyJ/base.EnergyJ
	if timePenalty > 0.35 {
		t.Errorf("memory-bound loop slowed too much: +%.0f%%", timePenalty*100)
	}
	if energyGain < 0.10 {
		t.Errorf("reduced frequency should save energy: %.0f%%", energyGain*100)
	}
}

func TestDRAMAccounting(t *testing.T) {
	m := newCrill(t)
	m.AccountDRAM(2.0, 1e9)
	want := 2.0*m.Arch().DRAMStaticW + 1e9*m.Arch().DRAMEnergyPerByte
	if math.Abs(m.DRAMEnergyJ()-want) > 1e-9 {
		t.Errorf("DRAM energy = %v, want %v", m.DRAMEnergyJ(), want)
	}
	m.AccountDRAM(-1, 1e9) // ignored
	if math.Abs(m.DRAMEnergyJ()-want) > 1e-9 {
		t.Errorf("negative dt must be ignored")
	}
	m.Reset()
	if m.DRAMEnergyJ() != 0 {
		t.Errorf("Reset must clear DRAM energy")
	}
}

func TestExecuteLoopAccountsDRAM(t *testing.T) {
	m := newCrill(t)
	res, err := m.ExecuteLoop(memLoop(), Config{Threads: 16, Sched: SchedStatic})
	if err != nil {
		t.Fatal(err)
	}
	if res.DRAMBytes <= 0 || res.DRAMEnergyJ <= 0 {
		t.Errorf("memory-bound loop must generate DRAM traffic: %+v", res.DRAMBytes)
	}
	if math.Abs(m.DRAMEnergyJ()-res.DRAMEnergyJ) > 1e-9 {
		t.Errorf("machine DRAM accounting %v != result %v", m.DRAMEnergyJ(), res.DRAMEnergyJ)
	}
	// A cache-resident loop moves far less DRAM data per unit work.
	m2 := newCrill(t)
	res2, err := m2.ExecuteLoop(balancedLoop(), Config{Threads: 16, Sched: SchedStatic})
	if err != nil {
		t.Fatal(err)
	}
	if res2.DRAMBytes >= res.DRAMBytes {
		t.Errorf("cache-friendly loop should stream less: %v vs %v", res2.DRAMBytes, res.DRAMBytes)
	}
}
