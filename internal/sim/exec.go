package sim

import (
	"fmt"
	"math"
)

// Schedule enumerates loop scheduling policies, mirroring OpenMP's
// schedule(static|dynamic|guided, chunk) clause semantics.
type Schedule int

const (
	// SchedStatic pre-assigns chunks round-robin; zero dispatch cost but no
	// load balancing beyond the interleave.
	SchedStatic Schedule = iota
	// SchedDynamic hands the next chunk to the first idle thread; perfect
	// balancing at the cost of one dispatch per chunk.
	SchedDynamic
	// SchedGuided hands out exponentially shrinking chunks (remaining/T,
	// floored at the chunk parameter).
	SchedGuided
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case SchedStatic:
		return "static"
	case SchedDynamic:
		return "dynamic"
	case SchedGuided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Config is one point of the ARCS search space as seen by the simulator:
// thread count, schedule kind and chunk size. Chunk 0 requests the OpenMP
// default (iterations/threads for static, 1 for dynamic and guided).
type Config struct {
	Threads int
	Sched   Schedule
	Chunk   int
	// Bind is the thread placement policy (OMP_PROC_BIND); the zero value
	// is spread, the paper's configuration.
	Bind BindPolicy
}

// String renders the config the way the paper writes them: "16, guided, 8".
func (c Config) String() string {
	ch := "default"
	if c.Chunk > 0 {
		ch = fmt.Sprintf("%d", c.Chunk)
	}
	return fmt.Sprintf("%d, %s, %s", c.Threads, c.Sched, ch)
}

// ExecResult reports everything the OMPT/APEX layers observe about one
// region execution.
type ExecResult struct {
	TimeS     float64 // wall time of the region (fork to join)
	EnergyJ   float64 // package energy including static share
	AvgPowerW float64 // EnergyJ / TimeS
	FreqGHz   float64 // DVFS point used
	Duty      float64 // duty factor (<1 only under extreme caps)

	Miss MissRates // modelled miss rates (occupancy-weighted)

	// DRAMBytes is the memory traffic of the execution; DRAMEnergyJ the
	// corresponding DRAM energy (outside the package domain).
	DRAMBytes   float64
	DRAMEnergyJ float64

	LoopS     float64 // longest per-thread busy time (the critical path)
	SerialS   float64 // master-only section time
	BarrierS  float64 // total wait time across the team
	DispatchS float64 // total dispatch overhead across the team
	Chunks    int     // chunks dispatched

	PerThreadBusyS []float64 // busy (work+dispatch) seconds per thread
	PerThreadWaitS []float64 // barrier wait seconds per thread
}

// BarrierFrac returns barrier time as a fraction of total thread-seconds,
// the load-balance metric plotted in Figs. 3d, 6 and 10.
func (r *ExecResult) BarrierFrac() float64 {
	total := r.TimeS * float64(len(r.PerThreadBusyS))
	if total <= 0 {
		return 0
	}
	return r.BarrierS / total
}

// threadState is a heap entry for dynamic/guided dispatch.
type threadState struct {
	avail float64 // time the thread becomes idle
	id    int
}

// threadHeap is a hand-rolled min-heap (by avail, ties by id for
// determinism). container/heap's interface{} boxing allocates on every
// push/pop, which dominates chunk-per-iteration simulations; this version
// is allocation free on the hot path.
type threadHeap []threadState

func (h threadHeap) less(i, j int) bool {
	//arcslint:ignore floatcmp exact equality defines the deterministic tie-break order
	if h[i].avail != h[j].avail {
		return h[i].avail < h[j].avail
	}
	return h[i].id < h[j].id
}

func (h threadHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// fixRoot restores the heap property after the root's avail increased
// (pop-modify-push collapses into one sift).
func (h threadHeap) fixRoot() { h.siftDown(0) }

func (h threadHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// probeScratch holds the reusable per-Machine buffers behind ProbeLoop, so
// the hot probe path allocates nothing beyond the two exported per-thread
// slices copied into each ExecResult. A Machine (and therefore ProbeLoop)
// is not safe for concurrent use; the experiment harness gives every
// worker goroutine its own Machine.
type probeScratch struct {
	missByOcc   []MissRates
	compByOcc   []float64
	memByOcc    []float64
	iterNSByOcc []float64
	start       []float64
	finish      []float64
	busy        []float64
	waits       []float64
	heap        threadHeap
	counts      []int
}

// growF returns s resized to n, reusing capacity when possible. Contents
// are unspecified; callers overwrite every element.
func growF(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// scratchHeap initialises the machine's reusable dispatch heap with the
// given per-thread next-idle times.
func (m *Machine) scratchHeap(avail []float64) threadHeap {
	t := len(avail)
	if cap(m.scratch.heap) < t {
		m.scratch.heap = make(threadHeap, t)
	}
	h := m.scratch.heap[:t]
	for i := 0; i < t; i++ {
		h[i] = threadState{avail: avail[i], id: i}
	}
	h.init()
	return h
}

// dispatchEqualChunks assigns n chunks of identical cost cS (the final,
// possibly partial, chunk costing cLastS) to the threads whose next-idle
// times are finish[i], exactly as the reference heap dispatcher would:
// the earliest-idle thread (ties by lower id) grabs each chunk in turn.
// Because every chunk costs the same, thread i's dispatch instants form the
// arithmetic progression finish[i] + k*cS, and the greedy assignment is the
// n smallest elements of the union of those t progressions. The split is
// found by bisecting the instant threshold — O(t log n) instead of
// O(n log t) heap operations. busy and finish are updated in place; it
// reports false (leaving them untouched) in degenerate cases the bisection
// cannot resolve, and the caller falls back to the reference heap.
func (m *Machine) dispatchEqualChunks(busy, finish []float64, n int, cS, cLastS float64) bool {
	t := len(finish)
	if n <= 0 || cS <= 0 {
		return false
	}
	// count(T): dispatch instants <= T, with per-thread contributions capped
	// at n to keep the arithmetic in range.
	count := func(T float64) int {
		total := 0
		for _, a := range finish {
			if T >= a {
				k := (T - a) / cS
				if k >= float64(n) {
					total += n
				} else {
					total += int(k) + 1
				}
				if total >= (1 << 40) {
					return 1 << 40
				}
			}
		}
		return total
	}
	lo := finish[0]
	for _, a := range finish {
		if a < lo {
			lo = a
		}
	}
	hi := lo + float64(n)*cS // the min-avail thread alone reaches n instants by here
	if math.IsInf(hi, 0) || math.IsNaN(hi) {
		return false
	}
	if count(lo) < n {
		// Invariant: count(lo) < n <= count(hi); bisect to float precision.
		for iter := 0; iter < 128; iter++ {
			mid := lo + (hi-lo)/2
			if mid <= lo || mid >= hi {
				break
			}
			if count(mid) >= n {
				hi = mid
			} else {
				lo = mid
			}
		}
	} else {
		hi = lo
	}
	// Per-thread counts at the threshold, then trim the overshoot by
	// removing the latest-dispatched chunks (largest instant; ties resolved
	// against the higher id, the reverse of the heap's dispatch order).
	if cap(m.scratch.counts) < t {
		m.scratch.counts = make([]int, t)
	}
	k := m.scratch.counts[:t]
	total := 0
	for i := range k {
		k[i] = 0
	}
	for i, a := range finish {
		if hi >= a {
			q := (hi - a) / cS
			if q >= float64(n) {
				k[i] = n
			} else {
				k[i] = int(q) + 1
			}
			total += k[i]
		}
	}
	if total < n {
		return false // numerical corner; let the heap handle it
	}
	for guard := 0; total > n; guard++ {
		if guard > 4*t+64 {
			return false
		}
		drop, found := -1, false
		var worst float64
		for i := 0; i < t; i++ {
			if k[i] == 0 {
				continue
			}
			last := finish[i] + float64(k[i]-1)*cS
			//arcslint:ignore floatcmp exact tie-break between identically computed finish times
			if !found || last > worst || (last == worst && i > drop) {
				drop, worst, found = i, last, true
			}
		}
		if !found {
			return false
		}
		k[drop]--
		total--
	}
	// The final (partial) chunk belongs to the thread holding the largest
	// assigned instant (ties by higher id — it was dispatched last).
	owner, found := -1, false
	var worst float64
	for i := 0; i < t; i++ {
		if k[i] == 0 {
			continue
		}
		last := finish[i] + float64(k[i]-1)*cS
		//arcslint:ignore floatcmp exact tie-break between identically computed finish times
		if !found || last > worst || (last == worst && i > owner) {
			owner, worst, found = i, last, true
		}
	}
	if !found {
		return false
	}
	for i := 0; i < t; i++ {
		if k[i] == 0 {
			continue
		}
		c := float64(k[i]) * cS
		busy[i] += c
		finish[i] += c
	}
	adj := cLastS - cS
	busy[owner] += adj
	finish[owner] += adj
	return true
}

// ResolveChunk applies OpenMP defaulting rules for a chunk parameter of 0.
func ResolveChunk(sched Schedule, chunk, iters, threads int) int {
	if chunk > 0 {
		return chunk
	}
	if sched == SchedStatic {
		c := (iters + threads - 1) / threads
		if c < 1 {
			c = 1
		}
		return c
	}
	return 1
}

// ProbeLoop simulates one execution of lm under cfg without advancing the
// machine clock or energy counter. ExecuteLoop is Probe + Account; tests
// and calibration tools use Probe directly.
//
//arcslint:hotpath every search probe runs through here; scratch buffers make it allocation-free
func (m *Machine) ProbeLoop(lm *LoopModel, cfg Config) (ExecResult, error) {
	if err := lm.Validate(); err != nil {
		return ExecResult{}, err
	}
	place, err := m.placement(cfg.Threads, cfg.Bind)
	if err != nil {
		return ExecResult{}, err
	}
	a := m.arch
	t := cfg.Threads
	f, duty := m.FreqAt(place.ActiveCores)
	sc := &m.scratch

	// Per-occupancy-class iteration cost (nanoseconds).
	maxOcc := 1
	for _, k := range place.Occupancy {
		if k > maxOcc {
			maxOcc = k
		}
	}
	if cap(sc.missByOcc) < maxOcc+1 {
		sc.missByOcc = make([]MissRates, maxOcc+1)
	}
	missByOcc := sc.missByOcc[:maxOcc+1]
	sc.compByOcc = growF(sc.compByOcc, maxOcc+1)
	sc.memByOcc = growF(sc.memByOcc, maxOcc+1)
	sc.iterNSByOcc = growF(sc.iterNSByOcc, maxOcc+1)
	compByOcc, memByOcc := sc.compByOcc, sc.memByOcc
	chunk := ResolveChunk(cfg.Sched, cfg.Chunk, lm.Iters, t)
	for k := 1; k <= maxOcc; k++ {
		mr := a.missRates(lm.Mem, t, chunk, k)
		missByOcc[k] = mr
		compByOcc[k] = lm.CompNSPerIter * (a.BaseGHz / f) / (a.SMTYield[k-1] * duty)
		memByOcc[k] = a.memStall(lm.Mem, mr, f, chunk)
	}

	// Memory-bandwidth saturation: scale the stall component until the
	// aggregate DRAM demand fits. A few fixed-point rounds converge because
	// higher stalls lower the demand monotonically.
	bwScale := 1.0
	for round := 0; round < 4; round++ {
		demand := 0.0 // GB/s
		for _, k := range place.Occupancy {
			iterNS := compByOcc[k] + memByOcc[k]*bwScale
			if iterNS <= 0 {
				continue
			}
			demand += missByOcc[k].BytesPerIter / iterNS // bytes/ns == GB/s
		}
		if demand <= a.MemBWGBs {
			break
		}
		bwScale *= demand / a.MemBWGBs
	}
	iterNSByOcc := sc.iterNSByOcc
	for k := 1; k <= maxOcc; k++ {
		iterNSByOcc[k] = compByOcc[k] + memByOcc[k]*bwScale
	}

	// Fork: threads start staggered.
	sc.start = growF(sc.start, t)
	start := sc.start
	for i := range start {
		start[i] = (a.ForkBaseUS + a.ForkStaggerUS*float64(i)) * 1e-6
	}

	dispatchNS := a.DispatchUS * 1000 * (1 + a.DispatchScale*float64(t-1))
	sc.finish = growF(sc.finish, t)
	sc.busy = growF(sc.busy, t)
	finish, busy := sc.finish, sc.busy
	copy(finish, start)
	for i := range busy {
		busy[i] = 0
	}
	chunksDispatched := 0
	totalDispatchS := 0.0

	// Dispatch cost hoisting: the weight of chunk [lo, hi) is hi-lo for
	// uniform loops (no weight vector needed) and a prefix-sum difference
	// otherwise; both are multiplied by the occupancy-class iteration cost.
	uniform := lm.uniform()
	var prefix []float64
	if !uniform {
		lm.buildWeights()
		prefix = lm.prefix
	}
	// occUniform: every thread runs at the same occupancy, so every equal
	// size chunk costs the same no matter which thread grabs it — the
	// precondition for the batched dynamic/guided fast paths.
	occUniform := true
	for _, k := range place.Occupancy {
		if k != place.Occupancy[0] {
			occUniform = false
			break
		}
	}

	switch cfg.Sched {
	case SchedStatic:
		if uniform {
			// Closed form: chunk turn goes to thread turn%t, so per-thread
			// iteration totals are pure arithmetic over iters/chunk — no
			// per-chunk loop.
			nChunks := (lm.Iters + chunk - 1) / chunk
			lastSz := lm.Iters - (nChunks-1)*chunk
			lastTid := (nChunks - 1) % t
			for tid := 0; tid < t; tid++ {
				nc := nChunks / t
				if tid < nChunks%t {
					nc++
				}
				if nc == 0 {
					continue
				}
				iters := nc * chunk
				if tid == lastTid {
					iters += lastSz - chunk
				}
				c := float64(iters) * iterNSByOcc[place.Occupancy[tid]] * 1e-9
				finish[tid] += c
				busy[tid] += c
			}
			chunksDispatched = nChunks
		} else {
			// Reference path: round-robin pre-assignment, no dispatch cost.
			for pos, turn := 0, 0; pos < lm.Iters; turn++ {
				tid := turn % t
				hi := pos + chunk
				if hi > lm.Iters {
					hi = lm.Iters
				}
				c := (prefix[hi] - prefix[pos]) * iterNSByOcc[place.Occupancy[tid]] * 1e-9
				finish[tid] += c
				busy[tid] += c
				pos = hi
				chunksDispatched++
			}
		}
	case SchedDynamic, SchedGuided:
		dS := dispatchNS * 1e-9
		remaining := lm.Iters
		if uniform && occUniform {
			iterS := iterNSByOcc[place.Occupancy[0]] * 1e-9
			if cfg.Sched == SchedGuided {
				// Guided decay phase: exponentially shrinking chunks until
				// the floor is reached. O(t log(iters/chunk)) chunks; the
				// constant-size tail below is batched.
				h := m.scratchHeap(start)
				for remaining > 0 {
					g := (remaining + t - 1) / t
					if g <= chunk {
						break
					}
					sz := g
					id := h[0].id
					c := dS + float64(sz)*iterS
					busy[id] += c
					totalDispatchS += dS
					h[0].avail += c
					finish[id] = h[0].avail
					h.fixRoot()
					remaining -= sz
					chunksDispatched++
				}
			}
			if remaining > 0 {
				// Batched equal-cost dispatch: all remaining chunks have
				// size chunk (the last one possibly smaller) and identical
				// cost, so the greedy earliest-idle assignment reduces to
				// selecting the n smallest dispatch instants across t
				// arithmetic progressions.
				n := (remaining + chunk - 1) / chunk
				rem := remaining - (n-1)*chunk
				cS := dS + float64(chunk)*iterS
				cLastS := dS + float64(rem)*iterS
				if cS > 0 && m.dispatchEqualChunks(busy, finish, n, cS, cLastS) {
					chunksDispatched += n
					totalDispatchS += float64(n) * dS
					remaining = 0
				}
			}
		}
		if remaining > 0 {
			// Reference path: one heap operation per dispatched chunk.
			h := m.scratchHeap(finish)
			pos := lm.Iters - remaining
			for remaining > 0 {
				id := h[0].id // earliest-idle thread grabs the next chunk
				sz := chunk
				if cfg.Sched == SchedGuided {
					g := (remaining + t - 1) / t
					if g > sz {
						sz = g
					}
				}
				if sz > remaining {
					sz = remaining
				}
				var w float64
				if uniform {
					w = float64(sz)
				} else {
					w = prefix[pos+sz] - prefix[pos]
				}
				c := dS + w*iterNSByOcc[place.Occupancy[id]]*1e-9
				busy[id] += c
				totalDispatchS += dS
				h[0].avail += c
				finish[id] = h[0].avail
				h.fixRoot()
				pos += sz
				remaining -= sz
				chunksDispatched++
			}
		}
	default:
		return ExecResult{}, fmt.Errorf("sim: unknown schedule %v", cfg.Sched)
	}

	loopEnd := 0.0
	for _, ft := range finish {
		if ft > loopEnd {
			loopEnd = ft
		}
	}

	// Master-only serial section: runs after the master drains its chunks,
	// possibly overlapping other threads' tails.
	serialS := lm.SerialNS * (a.BaseGHz / f) / duty * 1e-9
	masterDone := finish[0] + serialS
	regionEnd := loopEnd
	if masterDone > regionEnd {
		regionEnd = masterDone
	}

	sc.waits = growF(sc.waits, t)
	waits := sc.waits
	var barrierS float64
	for i := 0; i < t; i++ {
		end := finish[i]
		if i == 0 {
			end = masterDone
		}
		w := regionEnd - end
		if w < 0 {
			w = 0
		}
		waits[i] = w
		barrierS += w
	}

	// Energy. Static power runs for the whole region; each busy thread
	// draws its share of its core's dynamic power; barrier waits spin for
	// SpinWindow then sleep.
	corePower := m.CorePowerAt(f, duty)
	energy := a.StaticW * regionEnd
	for i := 0; i < t; i++ {
		share := corePower / float64(place.Occupancy[i])
		b := busy[i]
		if i == 0 {
			b += serialS
		}
		energy += share * b
		spin := waits[i]
		if spin > a.SpinWindowS {
			energy += share * a.SpinPowerFrac * a.SpinWindowS
			energy += share * a.SleepPowerFrac * (waits[i] - a.SpinWindowS)
		} else {
			energy += share * a.SpinPowerFrac * spin
		}
	}

	// Occupancy-weighted miss rates for reporting.
	var rep MissRates
	for _, k := range place.Occupancy {
		rep.L1 += missByOcc[k].L1
		rep.L2 += missByOcc[k].L2
		rep.L3 += missByOcc[k].L3
		rep.BytesPerIter += missByOcc[k].BytesPerIter
	}
	inv := 1 / float64(t)
	rep.L1 *= inv
	rep.L2 *= inv
	rep.L3 *= inv
	rep.BytesPerIter *= inv

	maxBusy := 0.0
	for _, b := range busy {
		if b > maxBusy {
			maxBusy = b
		}
	}

	// Run-to-run measurement noise (1 unless enabled): scales the whole
	// execution uniformly, leaving power and miss rates unchanged.
	nf := m.noiseFactor()
	if nf != 1 { //arcslint:ignore floatcmp 1 is the noise-disabled sentinel, returned verbatim
		regionEnd *= nf
		energy *= nf
		loopEnd *= nf
		serialS *= nf
		barrierS *= nf
		totalDispatchS *= nf
		maxBusy *= nf
		for i := range busy {
			busy[i] *= nf
			waits[i] *= nf
		}
	}

	dramBytes := rep.BytesPerIter * float64(lm.Iters) * nf

	// Copy-on-return: busy and waits live in the machine's scratch and are
	// reused by the next probe; only the exported slices are allocated.
	outBusy := make([]float64, t)
	outWaits := make([]float64, t)
	copy(outBusy, busy)
	copy(outWaits, waits)

	res := ExecResult{
		TimeS:          regionEnd,
		EnergyJ:        energy,
		AvgPowerW:      energy / math.Max(regionEnd, 1e-12),
		DRAMBytes:      dramBytes,
		DRAMEnergyJ:    a.DRAMStaticW*regionEnd + a.DRAMEnergyPerByte*dramBytes,
		FreqGHz:        f,
		Duty:           duty,
		Miss:           rep,
		LoopS:          maxBusy,
		SerialS:        serialS,
		BarrierS:       barrierS,
		DispatchS:      totalDispatchS,
		Chunks:         chunksDispatched,
		PerThreadBusyS: outBusy,
		PerThreadWaitS: outWaits,
	}
	return res, nil
}

// ExecuteLoop simulates one execution of lm under cfg and advances the
// machine clock and energy counter accordingly.
func (m *Machine) ExecuteLoop(lm *LoopModel, cfg Config) (ExecResult, error) {
	res, err := m.ProbeLoop(lm, cfg)
	if err != nil {
		return res, err
	}
	m.Account(res.TimeS, res.AvgPowerW)
	m.AccountDRAM(res.TimeS, res.DRAMBytes)
	return res, nil
}

// AccountOverhead charges dt seconds of single-core runtime overhead
// (configuration changes, instrumentation) to the machine: static power
// plus one busy core at the current single-core DVFS point.
func (m *Machine) AccountOverhead(dt float64) {
	if dt <= 0 {
		return
	}
	f, duty := m.FreqAt(1)
	m.Account(dt, m.arch.StaticW+m.CorePowerAt(f, duty))
	m.AccountDRAM(dt, 0)
}
