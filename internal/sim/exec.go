package sim

import (
	"fmt"
	"math"
)

// Schedule enumerates loop scheduling policies, mirroring OpenMP's
// schedule(static|dynamic|guided, chunk) clause semantics.
type Schedule int

const (
	// SchedStatic pre-assigns chunks round-robin; zero dispatch cost but no
	// load balancing beyond the interleave.
	SchedStatic Schedule = iota
	// SchedDynamic hands the next chunk to the first idle thread; perfect
	// balancing at the cost of one dispatch per chunk.
	SchedDynamic
	// SchedGuided hands out exponentially shrinking chunks (remaining/T,
	// floored at the chunk parameter).
	SchedGuided
)

// String implements fmt.Stringer.
func (s Schedule) String() string {
	switch s {
	case SchedStatic:
		return "static"
	case SchedDynamic:
		return "dynamic"
	case SchedGuided:
		return "guided"
	default:
		return fmt.Sprintf("Schedule(%d)", int(s))
	}
}

// Config is one point of the ARCS search space as seen by the simulator:
// thread count, schedule kind and chunk size. Chunk 0 requests the OpenMP
// default (iterations/threads for static, 1 for dynamic and guided).
type Config struct {
	Threads int
	Sched   Schedule
	Chunk   int
	// Bind is the thread placement policy (OMP_PROC_BIND); the zero value
	// is spread, the paper's configuration.
	Bind BindPolicy
}

// String renders the config the way the paper writes them: "16, guided, 8".
func (c Config) String() string {
	ch := "default"
	if c.Chunk > 0 {
		ch = fmt.Sprintf("%d", c.Chunk)
	}
	return fmt.Sprintf("%d, %s, %s", c.Threads, c.Sched, ch)
}

// ExecResult reports everything the OMPT/APEX layers observe about one
// region execution.
type ExecResult struct {
	TimeS     float64 // wall time of the region (fork to join)
	EnergyJ   float64 // package energy including static share
	AvgPowerW float64 // EnergyJ / TimeS
	FreqGHz   float64 // DVFS point used
	Duty      float64 // duty factor (<1 only under extreme caps)

	Miss MissRates // modelled miss rates (occupancy-weighted)

	// DRAMBytes is the memory traffic of the execution; DRAMEnergyJ the
	// corresponding DRAM energy (outside the package domain).
	DRAMBytes   float64
	DRAMEnergyJ float64

	LoopS     float64 // longest per-thread busy time (the critical path)
	SerialS   float64 // master-only section time
	BarrierS  float64 // total wait time across the team
	DispatchS float64 // total dispatch overhead across the team
	Chunks    int     // chunks dispatched

	PerThreadBusyS []float64 // busy (work+dispatch) seconds per thread
	PerThreadWaitS []float64 // barrier wait seconds per thread
}

// BarrierFrac returns barrier time as a fraction of total thread-seconds,
// the load-balance metric plotted in Figs. 3d, 6 and 10.
func (r *ExecResult) BarrierFrac() float64 {
	total := r.TimeS * float64(len(r.PerThreadBusyS))
	if total <= 0 {
		return 0
	}
	return r.BarrierS / total
}

// threadState is a heap entry for dynamic/guided dispatch.
type threadState struct {
	avail float64 // time the thread becomes idle
	id    int
}

// threadHeap is a hand-rolled min-heap (by avail, ties by id for
// determinism). container/heap's interface{} boxing allocates on every
// push/pop, which dominates chunk-per-iteration simulations; this version
// is allocation free on the hot path.
type threadHeap []threadState

func (h threadHeap) less(i, j int) bool {
	if h[i].avail != h[j].avail {
		return h[i].avail < h[j].avail
	}
	return h[i].id < h[j].id
}

func (h threadHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// fixRoot restores the heap property after the root's avail increased
// (pop-modify-push collapses into one sift).
func (h threadHeap) fixRoot() { h.siftDown(0) }

func (h threadHeap) siftDown(i int) {
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && h.less(l, smallest) {
			smallest = l
		}
		if r < n && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
}

// ResolveChunk applies OpenMP defaulting rules for a chunk parameter of 0.
func ResolveChunk(sched Schedule, chunk, iters, threads int) int {
	if chunk > 0 {
		return chunk
	}
	if sched == SchedStatic {
		c := (iters + threads - 1) / threads
		if c < 1 {
			c = 1
		}
		return c
	}
	return 1
}

// ProbeLoop simulates one execution of lm under cfg without advancing the
// machine clock or energy counter. ExecuteLoop is Probe + Account; tests
// and calibration tools use Probe directly.
func (m *Machine) ProbeLoop(lm *LoopModel, cfg Config) (ExecResult, error) {
	if err := lm.Validate(); err != nil {
		return ExecResult{}, err
	}
	place, err := m.arch.PlaceWith(cfg.Threads, cfg.Bind)
	if err != nil {
		return ExecResult{}, err
	}
	a := m.arch
	t := cfg.Threads
	f, duty := m.FreqAt(place.ActiveCores)

	// Per-occupancy-class iteration cost (nanoseconds).
	maxOcc := 1
	for _, k := range place.Occupancy {
		if k > maxOcc {
			maxOcc = k
		}
	}
	missByOcc := make([]MissRates, maxOcc+1)
	compByOcc := make([]float64, maxOcc+1)
	memByOcc := make([]float64, maxOcc+1)
	chunk := ResolveChunk(cfg.Sched, cfg.Chunk, lm.Iters, t)
	for k := 1; k <= maxOcc; k++ {
		mr := a.missRates(lm.Mem, t, chunk, k)
		missByOcc[k] = mr
		compByOcc[k] = lm.CompNSPerIter * (a.BaseGHz / f) / (a.SMTYield[k-1] * duty)
		memByOcc[k] = a.memStall(lm.Mem, mr, f, chunk)
	}

	// Memory-bandwidth saturation: scale the stall component until the
	// aggregate DRAM demand fits. A few fixed-point rounds converge because
	// higher stalls lower the demand monotonically.
	bwScale := 1.0
	for round := 0; round < 4; round++ {
		demand := 0.0 // GB/s
		for _, k := range place.Occupancy {
			iterNS := compByOcc[k] + memByOcc[k]*bwScale
			if iterNS <= 0 {
				continue
			}
			demand += missByOcc[k].BytesPerIter / iterNS // bytes/ns == GB/s
		}
		if demand <= a.MemBWGBs {
			break
		}
		bwScale *= demand / a.MemBWGBs
	}
	iterNSByOcc := make([]float64, maxOcc+1)
	for k := 1; k <= maxOcc; k++ {
		iterNSByOcc[k] = compByOcc[k] + memByOcc[k]*bwScale
	}

	// Fork: threads start staggered.
	start := make([]float64, t)
	for i := range start {
		start[i] = (a.ForkBaseUS + a.ForkStaggerUS*float64(i)) * 1e-6
	}

	dispatchNS := a.DispatchUS * 1000 * (1 + a.DispatchScale*float64(t-1))
	finish := make([]float64, t)
	busy := make([]float64, t)
	copy(finish, start)
	chunksDispatched := 0
	totalDispatchS := 0.0

	chunkCostS := func(tid, lo, hi int) float64 {
		k := place.Occupancy[tid]
		return lm.WeightSum(lo, hi) * iterNSByOcc[k] * 1e-9
	}

	switch cfg.Sched {
	case SchedStatic:
		// Round-robin pre-assignment, no dispatch cost.
		for pos, turn := 0, 0; pos < lm.Iters; turn++ {
			tid := turn % t
			hi := pos + chunk
			if hi > lm.Iters {
				hi = lm.Iters
			}
			c := chunkCostS(tid, pos, hi)
			finish[tid] += c
			busy[tid] += c
			pos = hi
			chunksDispatched++
		}
	case SchedDynamic, SchedGuided:
		h := make(threadHeap, t)
		for i := 0; i < t; i++ {
			h[i] = threadState{avail: start[i], id: i}
		}
		h.init()
		remaining := lm.Iters
		pos := 0
		dS := dispatchNS * 1e-9
		for remaining > 0 {
			id := h[0].id // earliest-idle thread grabs the next chunk
			sz := chunk
			if cfg.Sched == SchedGuided {
				g := (remaining + t - 1) / t
				if g > sz {
					sz = g
				}
			}
			if sz > remaining {
				sz = remaining
			}
			c := dS + chunkCostS(id, pos, pos+sz)
			busy[id] += c
			totalDispatchS += dS
			h[0].avail += c
			finish[id] = h[0].avail
			h.fixRoot()
			pos += sz
			remaining -= sz
			chunksDispatched++
		}
	default:
		return ExecResult{}, fmt.Errorf("sim: unknown schedule %v", cfg.Sched)
	}

	loopEnd := 0.0
	for _, ft := range finish {
		if ft > loopEnd {
			loopEnd = ft
		}
	}

	// Master-only serial section: runs after the master drains its chunks,
	// possibly overlapping other threads' tails.
	serialS := lm.SerialNS * (a.BaseGHz / f) / duty * 1e-9
	masterDone := finish[0] + serialS
	regionEnd := loopEnd
	if masterDone > regionEnd {
		regionEnd = masterDone
	}

	waits := make([]float64, t)
	var barrierS float64
	for i := 0; i < t; i++ {
		end := finish[i]
		if i == 0 {
			end = masterDone
		}
		w := regionEnd - end
		if w < 0 {
			w = 0
		}
		waits[i] = w
		barrierS += w
	}

	// Energy. Static power runs for the whole region; each busy thread
	// draws its share of its core's dynamic power; barrier waits spin for
	// SpinWindow then sleep.
	corePower := m.CorePowerAt(f, duty)
	energy := a.StaticW * regionEnd
	for i := 0; i < t; i++ {
		share := corePower / float64(place.Occupancy[i])
		b := busy[i]
		if i == 0 {
			b += serialS
		}
		energy += share * b
		spin := waits[i]
		if spin > a.SpinWindowS {
			energy += share * a.SpinPowerFrac * a.SpinWindowS
			energy += share * a.SleepPowerFrac * (waits[i] - a.SpinWindowS)
		} else {
			energy += share * a.SpinPowerFrac * spin
		}
	}

	// Occupancy-weighted miss rates for reporting.
	var rep MissRates
	for _, k := range place.Occupancy {
		rep.L1 += missByOcc[k].L1
		rep.L2 += missByOcc[k].L2
		rep.L3 += missByOcc[k].L3
		rep.BytesPerIter += missByOcc[k].BytesPerIter
	}
	inv := 1 / float64(t)
	rep.L1 *= inv
	rep.L2 *= inv
	rep.L3 *= inv
	rep.BytesPerIter *= inv

	maxBusy := 0.0
	for _, b := range busy {
		if b > maxBusy {
			maxBusy = b
		}
	}

	// Run-to-run measurement noise (1 unless enabled): scales the whole
	// execution uniformly, leaving power and miss rates unchanged.
	nf := m.noiseFactor()
	if nf != 1 {
		regionEnd *= nf
		energy *= nf
		loopEnd *= nf
		serialS *= nf
		barrierS *= nf
		totalDispatchS *= nf
		maxBusy *= nf
		for i := range busy {
			busy[i] *= nf
			waits[i] *= nf
		}
	}

	dramBytes := rep.BytesPerIter * float64(lm.Iters) * nf

	res := ExecResult{
		TimeS:          regionEnd,
		EnergyJ:        energy,
		AvgPowerW:      energy / math.Max(regionEnd, 1e-12),
		DRAMBytes:      dramBytes,
		DRAMEnergyJ:    a.DRAMStaticW*regionEnd + a.DRAMEnergyPerByte*dramBytes,
		FreqGHz:        f,
		Duty:           duty,
		Miss:           rep,
		LoopS:          maxBusy,
		SerialS:        serialS,
		BarrierS:       barrierS,
		DispatchS:      totalDispatchS,
		Chunks:         chunksDispatched,
		PerThreadBusyS: busy,
		PerThreadWaitS: waits,
	}
	return res, nil
}

// ExecuteLoop simulates one execution of lm under cfg and advances the
// machine clock and energy counter accordingly.
func (m *Machine) ExecuteLoop(lm *LoopModel, cfg Config) (ExecResult, error) {
	res, err := m.ProbeLoop(lm, cfg)
	if err != nil {
		return res, err
	}
	m.Account(res.TimeS, res.AvgPowerW)
	m.AccountDRAM(res.TimeS, res.DRAMBytes)
	return res, nil
}

// AccountOverhead charges dt seconds of single-core runtime overhead
// (configuration changes, instrumentation) to the machine: static power
// plus one busy core at the current single-core DVFS point.
func (m *Machine) AccountOverhead(dt float64) {
	if dt <= 0 {
		return
	}
	f, duty := m.FreqAt(1)
	m.Account(dt, m.arch.StaticW+m.CorePowerAt(f, duty))
	m.AccountDRAM(dt, 0)
}
