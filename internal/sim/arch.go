// Package sim implements the deterministic analytic multicore machine model
// that substitutes for the paper's physical testbeds (Intel Sandy Bridge
// "Crill" and IBM POWER8 "Minotaur").
//
// The model reproduces the causal chain ARCS exploits:
//
//	power cap -> per-active-core dynamic budget -> DVFS frequency ->
//	configuration-dependent slowdown (compute scales with f, DRAM does not)
//
// together with the OpenMP-relevant behaviours the paper analyses: load
// imbalance vs. schedule/chunk, per-chunk dispatch overhead, SMT yield and
// private-cache sharing, shared-L3 competition, memory-bandwidth saturation,
// fork stagger, and spin-vs-sleep energy at barriers.
//
// Nothing in this package knows about OpenMP naming; the internal/omp
// runtime maps OpenMP ICVs onto sim.Config values.
package sim

import (
	"errors"
	"fmt"
)

// Arch describes a machine architecture: topology, clocks, cache geometry,
// power constants and SMT behaviour. Arch values are immutable once built;
// Machine holds the mutable state (cap, clock, energy).
type Arch struct {
	Name string

	// Topology.
	Sockets        int
	CoresPerSocket int
	ThreadsPerCore int // SMT contexts per core

	// Clocks (GHz).
	BaseGHz float64 // nominal frequency; TDP sustains all cores at base
	MinGHz  float64 // lowest DVFS point; below this the core duty-cycles

	// Power (Watts, whole machine treated as one RAPL package domain).
	TDPW     float64 // thermal design power; cap==0 means "run at TDP"
	StaticW  float64 // leakage + uncore, paid whenever the machine is on
	DynCoreW float64 // dynamic power of one fully busy core at BaseGHz

	// Cache geometry. L1/L2 are per core (shared by SMT siblings), L3 is
	// machine-wide in this single-domain model.
	L1KB      int
	L2KB      int
	L3MB      float64
	LineBytes int

	// Access latencies in nanoseconds at BaseGHz. L1/L2 are core-clocked
	// (scale with f), L3 is uncore (mildly cap-sensitive), DRAM is fixed.
	L1LatNS  float64
	L2LatNS  float64
	L3LatNS  float64
	MemLatNS float64

	// MemBWGBs is the aggregate DRAM bandwidth; memory-bound loops saturate
	// it as threads are added, which is why more threads stop helping.
	MemBWGBs float64

	// PowerLawExp is the exponent of the dynamic power law P ∝ (f/base)^e.
	// Zero selects the physical default of 3 (P ∝ f·V², V ∝ f); the DVFS
	// ablation overrides it.
	PowerLawExp float64

	// DRAM power model (outside the RAPL package domain; the paper could
	// not cap or measure it — §VII lists memory power as future work).
	DRAMStaticW       float64 // background/refresh power
	DRAMEnergyPerByte float64 // joules per byte transferred

	// SMTYield[k-1] is the fraction of full-core compute throughput each of
	// k co-scheduled threads achieves. SMTYield[0] must be 1.
	SMTYield []float64

	// Runtime overheads.
	DispatchUS     float64 // dynamic/guided per-chunk grab (uncontended)
	DispatchScale  float64 // contention growth per extra thread
	ForkBaseUS     float64 // team wake-up latency before thread 0 starts
	ForkStaggerUS  float64 // additional start delay per subsequent thread
	ConfigChangeS  float64 // omp_set_num_threads+omp_set_schedule round trip
	InstrumentS    float64 // APEX timer+policy callback cost per region call
	SpinWindowS    float64 // barrier spin time before dropping to sleep
	SpinPowerFrac  float64 // fraction of core dynamic power burned spinning
	SleepPowerFrac float64 // fraction burned after dropping to sleep
	UncoreCapSlope float64 // L3 latency growth as f drops below base

	// Capabilities (paper §IV-A: Minotaur had neither capping privilege nor
	// energy counter access).
	CanCap       bool
	HasEnergyCtr bool
}

// Cores returns the total number of physical cores.
func (a *Arch) Cores() int { return a.Sockets * a.CoresPerSocket }

// HWThreads returns the total number of hardware thread contexts.
func (a *Arch) HWThreads() int { return a.Cores() * a.ThreadsPerCore }

// L3Bytes returns the shared last-level cache capacity in bytes.
func (a *Arch) L3Bytes() float64 { return a.L3MB * 1024 * 1024 }

// FreqLadder returns the discrete DVFS operating points from MinGHz to
// BaseGHz (ascending, ~6 steps) used by the future-work DVFS policy.
func (a *Arch) FreqLadder() []float64 {
	const steps = 6
	out := make([]float64, 0, steps)
	span := a.BaseGHz - a.MinGHz
	for i := 0; i < steps; i++ {
		out = append(out, a.MinGHz+span*float64(i)/float64(steps-1))
	}
	return out
}

// Validate checks internal consistency. Machine construction calls it, so a
// hand-built Arch that is physically meaningless is rejected early.
func (a *Arch) Validate() error {
	switch {
	case a.Sockets <= 0 || a.CoresPerSocket <= 0 || a.ThreadsPerCore <= 0:
		return fmt.Errorf("sim: %s: non-positive topology", a.Name)
	case a.BaseGHz <= 0 || a.MinGHz <= 0 || a.MinGHz > a.BaseGHz:
		return fmt.Errorf("sim: %s: bad frequency range [%g, %g]", a.Name, a.MinGHz, a.BaseGHz)
	case a.TDPW <= 0 || a.StaticW < 0 || a.DynCoreW <= 0:
		return fmt.Errorf("sim: %s: bad power constants", a.Name)
	case a.StaticW+a.DynCoreW*float64(a.Cores()) > a.TDPW*1.001:
		return fmt.Errorf("sim: %s: TDP %gW cannot sustain all cores at base frequency (needs %gW)",
			a.Name, a.TDPW, a.StaticW+a.DynCoreW*float64(a.Cores()))
	case a.L1KB <= 0 || a.L2KB <= 0 || a.L3MB <= 0 || a.LineBytes <= 0:
		return fmt.Errorf("sim: %s: bad cache geometry", a.Name)
	case len(a.SMTYield) != a.ThreadsPerCore:
		return fmt.Errorf("sim: %s: SMTYield has %d entries, want %d", a.Name, len(a.SMTYield), a.ThreadsPerCore)
	//arcslint:ignore floatcmp validating a hand-written table entry against an exact constant
	case a.SMTYield[0] != 1:
		return fmt.Errorf("sim: %s: SMTYield[0] must be 1", a.Name)
	case a.MemBWGBs <= 0:
		return fmt.Errorf("sim: %s: bad memory bandwidth", a.Name)
	}
	for i := 1; i < len(a.SMTYield); i++ {
		if a.SMTYield[i] <= 0 || a.SMTYield[i] > a.SMTYield[i-1] {
			return fmt.Errorf("sim: %s: SMTYield must be positive and non-increasing", a.Name)
		}
	}
	return nil
}

// BindPolicy selects how software threads map onto hardware contexts,
// mirroring OMP_PROC_BIND: spread scatters across cores first (the paper's
// configuration), close packs SMT siblings before moving to the next core.
type BindPolicy int

const (
	// BindSpread fills every core once before using SMT siblings.
	BindSpread BindPolicy = iota
	// BindClose fills each core's SMT contexts before the next core —
	// fewer active cores (higher frequency under a cap) but shared private
	// caches and lower per-thread yield.
	BindClose
)

// String implements fmt.Stringer.
func (b BindPolicy) String() string {
	switch b {
	case BindSpread:
		return "spread"
	case BindClose:
		return "close"
	default:
		return fmt.Sprintf("BindPolicy(%d)", int(b))
	}
}

// Placement describes how T software threads map onto cores: scatter-first
// (fill every core once, then add SMT siblings), matching OMP_PLACES=cores
// with spread binding, which is what the NPB runs in the paper used.
type Placement struct {
	Threads     int
	ActiveCores int
	// Occupancy[i] is the number of threads sharing the core that runs
	// software thread i. Yield and private-cache share derive from it.
	Occupancy []int
}

// ErrTooManyThreads is returned when a configuration requests more software
// threads than hardware contexts; the search spaces in the paper never
// oversubscribe, so the simulator treats it as a configuration error.
var ErrTooManyThreads = errors.New("sim: thread count exceeds hardware contexts")

// Place computes the scatter-first (spread) placement of t threads.
func (a *Arch) Place(t int) (Placement, error) { return a.PlaceWith(t, BindSpread) }

// PlaceWith computes the placement of t threads under a binding policy.
func (a *Arch) PlaceWith(t int, bind BindPolicy) (Placement, error) {
	if t <= 0 {
		return Placement{}, fmt.Errorf("sim: non-positive thread count %d", t)
	}
	if t > a.HWThreads() {
		return Placement{}, fmt.Errorf("%w: %d > %d on %s", ErrTooManyThreads, t, a.HWThreads(), a.Name)
	}
	cores := a.Cores()
	core := make([]int, t) // core index of each thread
	switch bind {
	case BindClose:
		for i := 0; i < t; i++ {
			core[i] = i / a.ThreadsPerCore
		}
	case BindSpread:
		for i := 0; i < t; i++ {
			core[i] = i % cores
		}
	default:
		return Placement{}, fmt.Errorf("sim: unknown bind policy %v", bind)
	}
	perCore := make([]int, cores)
	for _, c := range core {
		perCore[c]++
	}
	active := 0
	for _, n := range perCore {
		if n > 0 {
			active++
		}
	}
	occ := make([]int, t)
	for i, c := range core {
		occ[i] = perCore[c]
	}
	return Placement{Threads: t, ActiveCores: active, Occupancy: occ}, nil
}

// Crill models the paper's primary platform: a dual-socket Intel Xeon E5
// (Sandy Bridge) node at the University of Houston with 16 cores / 32
// hyper-threads at 2.4 GHz and a 115 W package TDP, cappable through RAPL
// at the paper's levels {55, 70, 85, 100, 115} W.
func Crill() *Arch {
	return &Arch{
		Name:              "Crill",
		Sockets:           2,
		CoresPerSocket:    8,
		ThreadsPerCore:    2,
		BaseGHz:           2.4,
		MinGHz:            1.2,
		TDPW:              115,
		StaticW:           32,
		DynCoreW:          (115.0 - 32.0) / 16.0,
		L1KB:              32,
		L2KB:              256,
		L3MB:              40, // 20 MB per socket
		LineBytes:         64,
		L1LatNS:           1.6,
		L2LatNS:           5.0,
		L3LatNS:           18.0,
		MemLatNS:          85.0,
		MemBWGBs:          68,
		SMTYield:          []float64{1.0, 0.62},
		DispatchUS:        0.18,
		DispatchScale:     0.015,
		ForkBaseUS:        4.0,
		ForkStaggerUS:     1.1,
		ConfigChangeS:     0.0008, // §III-C: ~0.8 ms per region call on Crill
		InstrumentS:       0.00005,
		SpinWindowS:       0.001,
		SpinPowerFrac:     0.70,
		SleepPowerFrac:    0.10,
		UncoreCapSlope:    0.30,
		DRAMStaticW:       10,
		DRAMEnergyPerByte: 3.0e-10,
		CanCap:            true,
		HasEnergyCtr:      true,
	}
}

// Minotaur models the paper's secondary platform: an IBM S822LC with two
// 10-core POWER8 processors at 2.92 GHz, SMT-8 (160 hardware threads), no
// power-capping privilege and no energy-counter access.
func Minotaur() *Arch {
	return &Arch{
		Name:           "Minotaur",
		Sockets:        2,
		CoresPerSocket: 10,
		ThreadsPerCore: 8,
		BaseGHz:        2.92,
		MinGHz:         2.0,
		TDPW:           380,
		StaticW:        95,
		DynCoreW:       (380.0 - 95.0) / 20.0,
		L1KB:           64,
		L2KB:           512,
		L3MB:           160, // 8 MB eDRAM per core
		LineBytes:      128,
		L1LatNS:        1.1,
		L2LatNS:        4.2,
		L3LatNS:        9.5,
		MemLatNS:       90.0,
		MemBWGBs:       170,
		// POWER8 SMT throughput peaks around SMT4 for HPC codes; SMT8
		// slightly degrades aggregate throughput (k * yield[k-1] peaks at
		// k=4), which is why the default 160-thread configuration loses to
		// reduced team sizes on Minotaur (§V-C).
		SMTYield:          []float64{1.0, 0.70, 0.52, 0.42, 0.32, 0.26, 0.215, 0.18},
		DispatchUS:        0.22,
		DispatchScale:     0.010,
		ForkBaseUS:        5.0,
		ForkStaggerUS:     0.9,
		ConfigChangeS:     0.0004,
		InstrumentS:       0.00005,
		SpinWindowS:       0.001,
		SpinPowerFrac:     0.70,
		SleepPowerFrac:    0.10,
		UncoreCapSlope:    0.30,
		DRAMStaticW:       25, // 256 GB of DDR4
		DRAMEnergyPerByte: 2.5e-10,
		CanCap:            false,
		HasEnergyCtr:      false,
	}
}
