package sim

import (
	"testing"
	"testing/quick"
)

// Property: for arbitrary valid loop models and configurations, every
// execution satisfies the structural invariants the OMPT layer relies on.
func TestExecInvariantsProperty(t *testing.T) {
	arch := Crill()
	m, err := NewMachine(arch)
	if err != nil {
		t.Fatal(err)
	}
	f := func(iters uint16, compUS uint16, serialUS uint16, imKind, blocks uint8,
		acc uint16, twKB uint16, footMB uint8, stride, boundary uint8,
		threads uint8, sched uint8, chunk uint16, bind, capSel uint8) bool {

		lm := &LoopModel{
			Name:          "prop",
			Iters:         int(iters%5000) + 1,
			CompNSPerIter: float64(compUS) * 10,
			SerialNS:      float64(serialUS) * 100,
			Imbalance: Imbalance{
				Kind:   ImbalanceKind(imKind % 5),
				Param:  float64(blocks%4)*0.4 + 0.1,
				Blocks: int(blocks%6) + 1,
				Seed:   int64(acc),
			},
			Mem: CacheSpec{
				AccessesPerIter:  float64(acc % 2000),
				BytesPerIter:     float64(twKB%4096) + 8,
				StrideElems:      int(stride%64) + 1,
				TemporalWindowKB: float64(twKB),
				FootprintMB:      float64(footMB),
				BoundaryLines:    float64(boundary % 64),
				PassesPerChunk:   1 + float64(blocks%3),
				L3Contention:     float64(bind%10) / 10,
				MLP:              1 + float64(stride%8),
			},
		}
		cfg := Config{
			Threads: int(threads%32) + 1,
			Sched:   Schedule(sched % 3),
			Chunk:   int(chunk % 1024),
			Bind:    BindPolicy(bind % 2),
		}
		caps := []float64{0, 55, 70, 85, 100}
		if err := m.SetPowerCap(caps[int(capSel)%len(caps)]); err != nil {
			return false
		}
		res, err := m.ProbeLoop(lm, cfg)
		if err != nil {
			return false
		}
		if !(res.TimeS > 0 && res.EnergyJ > 0) {
			return false
		}
		if res.LoopS > res.TimeS+1e-12 {
			return false
		}
		if res.BarrierS < 0 || res.DispatchS < 0 || res.SerialS < 0 {
			return false
		}
		if res.FreqGHz < arch.MinGHz-1e-9 || res.FreqGHz > arch.BaseGHz+1e-9 {
			return false
		}
		if res.Duty <= 0 || res.Duty > 1 {
			return false
		}
		if res.AvgPowerW > arch.TDPW*1.05 || res.AvgPowerW < arch.StaticW*0.99 {
			return false
		}
		if len(res.PerThreadBusyS) != cfg.Threads || len(res.PerThreadWaitS) != cfg.Threads {
			return false
		}
		for i := range res.PerThreadBusyS {
			if res.PerThreadBusyS[i] < 0 || res.PerThreadWaitS[i] < -1e-12 {
				return false
			}
		}
		if res.Miss.L1 < 0 || res.Miss.L1 > 1 || res.Miss.L2 < 0 || res.Miss.L2 > 1 ||
			res.Miss.L3 < 0 || res.Miss.L3 > 1 {
			return false
		}
		if res.DRAMBytes < 0 || res.DRAMEnergyJ < 0 {
			return false
		}
		// All iterations are executed exactly once: total busy work must be
		// at least the serial lower bound of the weighted compute (a cheap
		// conservation sanity check at base frequency).
		return res.Chunks >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the capped average power never exceeds the cap (plus epsilon),
// for any configuration.
func TestCapRespectedProperty(t *testing.T) {
	m, err := NewMachine(Crill())
	if err != nil {
		t.Fatal(err)
	}
	f := func(threads uint8, sched uint8, chunk uint8, capSel uint8) bool {
		caps := []float64{55, 70, 85, 100}
		capW := caps[int(capSel)%len(caps)]
		if err := m.SetPowerCap(capW); err != nil {
			return false
		}
		lm := &LoopModel{
			Name: "cap", Iters: 2048, CompNSPerIter: 30000,
			Mem: CacheSpec{AccessesPerIter: 200, BytesPerIter: 1024, TemporalWindowKB: 32, FootprintMB: 8, MLP: 4},
		}
		res, err := m.ProbeLoop(lm, Config{
			Threads: int(threads%32) + 1,
			Sched:   Schedule(sched % 3),
			Chunk:   int(chunk),
		})
		if err != nil {
			return false
		}
		return res.AvgPowerW <= capW*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
