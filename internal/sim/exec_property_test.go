package sim

import (
	"math"
	"testing"
	"testing/quick"
)

// Property: for arbitrary valid loop models and configurations, every
// execution satisfies the structural invariants the OMPT layer relies on.
func TestExecInvariantsProperty(t *testing.T) {
	arch := Crill()
	m, err := NewMachine(arch)
	if err != nil {
		t.Fatal(err)
	}
	f := func(iters uint16, compUS uint16, serialUS uint16, imKind, blocks uint8,
		acc uint16, twKB uint16, footMB uint8, stride, boundary uint8,
		threads uint8, sched uint8, chunk uint16, bind, capSel uint8) bool {

		lm := &LoopModel{
			Name:          "prop",
			Iters:         int(iters%5000) + 1,
			CompNSPerIter: float64(compUS) * 10,
			SerialNS:      float64(serialUS) * 100,
			Imbalance: Imbalance{
				Kind:   ImbalanceKind(imKind % 5),
				Param:  float64(blocks%4)*0.4 + 0.1,
				Blocks: int(blocks%6) + 1,
				Seed:   int64(acc),
			},
			Mem: CacheSpec{
				AccessesPerIter:  float64(acc % 2000),
				BytesPerIter:     float64(twKB%4096) + 8,
				StrideElems:      int(stride%64) + 1,
				TemporalWindowKB: float64(twKB),
				FootprintMB:      float64(footMB),
				BoundaryLines:    float64(boundary % 64),
				PassesPerChunk:   1 + float64(blocks%3),
				L3Contention:     float64(bind%10) / 10,
				MLP:              1 + float64(stride%8),
			},
		}
		cfg := Config{
			Threads: int(threads%32) + 1,
			Sched:   Schedule(sched % 3),
			Chunk:   int(chunk % 1024),
			Bind:    BindPolicy(bind % 2),
		}
		caps := []float64{0, 55, 70, 85, 100}
		if err := m.SetPowerCap(caps[int(capSel)%len(caps)]); err != nil {
			return false
		}
		res, err := m.ProbeLoop(lm, cfg)
		if err != nil {
			return false
		}
		if !(res.TimeS > 0 && res.EnergyJ > 0) {
			return false
		}
		if res.LoopS > res.TimeS+1e-12 {
			return false
		}
		if res.BarrierS < 0 || res.DispatchS < 0 || res.SerialS < 0 {
			return false
		}
		if res.FreqGHz < arch.MinGHz-1e-9 || res.FreqGHz > arch.BaseGHz+1e-9 {
			return false
		}
		if res.Duty <= 0 || res.Duty > 1 {
			return false
		}
		if res.AvgPowerW > arch.TDPW*1.05 || res.AvgPowerW < arch.StaticW*0.99 {
			return false
		}
		if len(res.PerThreadBusyS) != cfg.Threads || len(res.PerThreadWaitS) != cfg.Threads {
			return false
		}
		for i := range res.PerThreadBusyS {
			if res.PerThreadBusyS[i] < 0 || res.PerThreadWaitS[i] < -1e-12 {
				return false
			}
		}
		if res.Miss.L1 < 0 || res.Miss.L1 > 1 || res.Miss.L2 < 0 || res.Miss.L2 > 1 ||
			res.Miss.L3 < 0 || res.Miss.L3 > 1 {
			return false
		}
		if res.DRAMBytes < 0 || res.DRAMEnergyJ < 0 {
			return false
		}
		// All iterations are executed exactly once: total busy work must be
		// at least the serial lower bound of the weighted compute (a cheap
		// conservation sanity check at base frequency).
		return res.Chunks >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// relClose reports |a-b| <= tol * max(|a|, |b|, 1e-30).
func relClose(a, b, tol float64) bool {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-30 {
		scale = 1e-30
	}
	return d <= tol*scale
}

// Differential property: for uniform-weight loops the closed-form/batched
// dispatch fast paths must agree with the reference heap simulator. A Ramp
// imbalance with Param 0 produces the exact same constant-1 weight vector
// but is classified as weighted, so it runs the reference path — probing
// the same loop both ways compares fast path against reference directly.
func TestFastPathMatchesReference(t *testing.T) {
	const tol = 1e-9
	for _, arch := range []*Arch{Crill(), Minotaur()} {
		fast, err := NewMachine(arch)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewMachine(arch)
		if err != nil {
			t.Fatal(err)
		}
		f := func(iters uint16, compUS uint16, serialUS uint16,
			acc uint16, twKB uint16, footMB uint8, stride, boundary uint8,
			threadSel uint8, sched uint8, chunk uint16, bind, capSel uint8) bool {

			mem := CacheSpec{
				AccessesPerIter:  float64(acc % 2000),
				BytesPerIter:     float64(twKB%4096) + 8,
				StrideElems:      int(stride%64) + 1,
				TemporalWindowKB: float64(twKB),
				FootprintMB:      float64(footMB),
				BoundaryLines:    float64(boundary % 64),
				PassesPerChunk:   1 + float64(stride%3),
				L3Contention:     float64(bind%10) / 10,
				MLP:              1 + float64(stride%8),
			}
			mk := func(kind ImbalanceKind) *LoopModel {
				return &LoopModel{
					Name:          "diff",
					Iters:         int(iters%50000) + 1,
					CompNSPerIter: float64(compUS) * 10,
					SerialNS:      float64(serialUS) * 100,
					Imbalance:     Imbalance{Kind: kind}, // Ramp keeps Param 0: constant weights
					Mem:           mem,
				}
			}
			// Mix of occupancy-uniform and non-uniform team sizes.
			threads := []int{1, 2, 3, 8, arch.Cores(), arch.Cores() + arch.Cores()/2, arch.HWThreads()}[int(threadSel)%7]
			cfg := Config{
				Threads: threads,
				Sched:   Schedule(sched % 3),
				Chunk:   int(chunk % 600),
				Bind:    BindPolicy(bind % 2),
			}
			caps := []float64{0, 55, 70, 85, 100}
			capW := caps[int(capSel)%len(caps)]
			if !arch.CanCap {
				capW = 0
			}
			if err := fast.SetPowerCap(capW); err != nil {
				return false
			}
			if err := ref.SetPowerCap(capW); err != nil {
				return false
			}
			fr, err1 := fast.ProbeLoop(mk(Uniform), cfg)
			rr, err2 := ref.ProbeLoop(mk(Ramp), cfg)
			if (err1 == nil) != (err2 == nil) {
				t.Errorf("%s %v: error mismatch: %v vs %v", arch.Name, cfg, err1, err2)
				return false
			}
			if err1 != nil {
				return true // both rejected the config identically
			}
			if fr.Chunks != rr.Chunks {
				t.Errorf("%s %v: chunks %d != %d", arch.Name, cfg, fr.Chunks, rr.Chunks)
				return false
			}
			scalars := [][2]float64{
				{fr.TimeS, rr.TimeS}, {fr.EnergyJ, rr.EnergyJ},
				{fr.LoopS, rr.LoopS}, {fr.SerialS, rr.SerialS},
				{fr.BarrierS, rr.BarrierS}, {fr.DispatchS, rr.DispatchS},
				{fr.DRAMBytes, rr.DRAMBytes}, {fr.DRAMEnergyJ, rr.DRAMEnergyJ},
			}
			for i, s := range scalars {
				if !relClose(s[0], s[1], tol) {
					t.Errorf("%s %v: scalar %d: fast %v != ref %v", arch.Name, cfg, i, s[0], s[1])
					return false
				}
			}
			for i := range fr.PerThreadBusyS {
				if !relClose(fr.PerThreadBusyS[i], rr.PerThreadBusyS[i], tol) ||
					!relClose(fr.PerThreadWaitS[i], rr.PerThreadWaitS[i], tol) {
					t.Errorf("%s %v: thread %d: busy/wait fast (%v, %v) != ref (%v, %v)",
						arch.Name, cfg, i, fr.PerThreadBusyS[i], fr.PerThreadWaitS[i],
						rr.PerThreadBusyS[i], rr.PerThreadWaitS[i])
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
			t.Errorf("%s: %v", arch.Name, err)
		}
	}
}

// Deterministic fast-path differential coverage of the benchmark grid
// (every schedule × chunk used by the perf benchmarks, LULESH-scale).
func TestFastPathMatchesReferenceGrid(t *testing.T) {
	arch := Crill()
	fast, err := NewMachine(arch)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewMachine(arch)
	if err != nil {
		t.Fatal(err)
	}
	mem := CacheSpec{
		AccessesPerIter: 4000, BytesPerIter: 8192, TemporalWindowKB: 600,
		FootprintMB: 250, BoundaryLines: 64, PassesPerChunk: 3, L3Contention: 0.9, MLP: 2,
	}
	for _, iters := range []int{1, 7, 10404, 91125} {
		for _, sched := range []Schedule{SchedStatic, SchedDynamic, SchedGuided} {
			for _, chunk := range []int{0, 1, 8, 128} {
				for _, threads := range []int{1, 16, 24, 32} {
					cfg := Config{Threads: threads, Sched: sched, Chunk: chunk}
					u := &LoopModel{Name: "u", Iters: iters, CompNSPerIter: 15000, Mem: mem}
					r := &LoopModel{Name: "r", Iters: iters, CompNSPerIter: 15000,
						Imbalance: Imbalance{Kind: Ramp}, Mem: mem}
					fr, err := fast.ProbeLoop(u, cfg)
					if err != nil {
						t.Fatal(err)
					}
					rr, err := ref.ProbeLoop(r, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if fr.Chunks != rr.Chunks {
						t.Errorf("%v iters=%d: chunks %d != %d", cfg, iters, fr.Chunks, rr.Chunks)
					}
					if !relClose(fr.TimeS, rr.TimeS, 1e-9) || !relClose(fr.EnergyJ, rr.EnergyJ, 1e-9) ||
						!relClose(fr.BarrierS, rr.BarrierS, 1e-9) || !relClose(fr.DispatchS, rr.DispatchS, 1e-9) {
						t.Errorf("%v iters=%d: fast (%v J=%v B=%v D=%v) != ref (%v J=%v B=%v D=%v)",
							cfg, iters, fr.TimeS, fr.EnergyJ, fr.BarrierS, fr.DispatchS,
							rr.TimeS, rr.EnergyJ, rr.BarrierS, rr.DispatchS)
					}
				}
			}
		}
	}
}

// Property: the capped average power never exceeds the cap (plus epsilon),
// for any configuration.
func TestCapRespectedProperty(t *testing.T) {
	m, err := NewMachine(Crill())
	if err != nil {
		t.Fatal(err)
	}
	f := func(threads uint8, sched uint8, chunk uint8, capSel uint8) bool {
		caps := []float64{55, 70, 85, 100}
		capW := caps[int(capSel)%len(caps)]
		if err := m.SetPowerCap(capW); err != nil {
			return false
		}
		lm := &LoopModel{
			Name: "cap", Iters: 2048, CompNSPerIter: 30000,
			Mem: CacheSpec{AccessesPerIter: 200, BytesPerIter: 1024, TemporalWindowKB: 32, FootprintMB: 8, MLP: 4},
		}
		res, err := m.ProbeLoop(lm, Config{
			Threads: int(threads%32) + 1,
			Sched:   Schedule(sched % 3),
			Chunk:   int(chunk),
		})
		if err != nil {
			return false
		}
		return res.AvgPowerW <= capW*1.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
