package sim

// cache.go implements the analytic cache-hierarchy model. For a loop with a
// given CacheSpec running under a configuration (threads T, chunk C, SMT
// occupancy k, frequency f) it produces per-level miss rates and the average
// memory stall time per iteration. The model is deliberately analytic and
// monotone in its inputs so that the configuration landscape is smooth
// enough for Nelder-Mead, while still producing the qualitative effects the
// paper measures in Figs. 3, 6 and 10:
//
//   - long-stride access defeats spatial locality (BT compute_rhs, §V-B);
//   - tiny chunks reload boundary lines and break locality, huge chunks
//     with imbalance cost barrier time, so a sweet spot exists;
//   - SMT siblings halve the private caches;
//   - more threads raise shared-L3 competition (the paper's "maximise use
//     of the shared L3" observation);
//   - power caps slow the uncore, raising effective L3 latency.

// MissRates carries per-level miss ratios (fraction of accesses that miss
// that level, conditional on reaching it) plus the derived DRAM traffic.
type MissRates struct {
	L1 float64 // of all accesses
	L2 float64 // of L1 misses
	L3 float64 // of L2 misses
	// BytesPerIter is the DRAM traffic one iteration generates.
	BytesPerIter float64
}

// fit is the classic capacity-fit curve: the probability that a working set
// of ws bytes is retained by a cache of cap bytes. It is 1/2 at ws == cap
// and falls smoothly as the set outgrows the cache.
func fit(capBytes, wsBytes float64) float64 {
	if wsBytes <= 0 {
		return 1
	}
	if capBytes <= 0 {
		return 0
	}
	return capBytes / (capBytes + wsBytes)
}

// missRates evaluates the model for chunk size c, thread count t, and SMT
// occupancy k (threads sharing the private caches).
func (a *Arch) missRates(spec CacheSpec, t, c, k int) MissRates {
	s := spec.normalized()
	if c < 1 {
		c = 1
	}
	if k < 1 {
		k = 1
	}
	line := float64(a.LineBytes)

	// Spatial term: lines touched per access. Unit stride shares a line
	// across line/8 accesses; long strides touch a new line every access.
	linesPerAccess := 8 * float64(s.StrideElems) / line
	if linesPerAccess > 1 {
		linesPerAccess = 1
	}
	if floor := 8 / line; linesPerAccess < floor {
		linesPerAccess = floor
	}

	// Private caches are shared among SMT siblings.
	effL1 := float64(a.L1KB) * 1024 / float64(k)
	effL2 := float64(a.L2KB) * 1024 / float64(k)
	tw := s.TemporalWindowKB * 1024

	// The effective re-reference window blends the loop's intrinsic
	// temporal window with the chunk's data set, weighted by how many
	// passes the loop makes over a chunk: multi-pass kernels keep a chunk
	// resident, so smaller chunks shrink the window (tiling). This single
	// window drives all three levels, which is what lets thread count,
	// schedule chunking and SMT placement all move the measured miss rates
	// the way the paper's Figs. 3/6/10 show.
	chunkBytes := float64(c) * s.BytesPerIter
	tw2 := (tw + chunkBytes*(s.PassesPerChunk-1)) / s.PassesPerChunk

	// L1: an access misses if it opens a new line and the reuse window has
	// outgrown L1. Chunk boundaries reload BoundaryLines lines each.
	hit1 := fit(effL1, tw2)
	m1 := linesPerAccess * (1 - hit1)
	if s.AccessesPerIter > 0 {
		m1 += s.BoundaryLines / (float64(c) * s.AccessesPerIter)
	}
	if m1 > 1 {
		m1 = 1
	}
	if m1 < 0 {
		m1 = 0
	}

	// L2 capacity fit against the blended window.
	m2 := 1 - fit(effL2, tw2)
	if m2 < 0 {
		m2 = 0
	}

	// L3: data streamed beyond the shared capacity is cold (must come from
	// DRAM on first touch); the re-referenced window survives only in the
	// thread's effective share of L3, which shrinks as concurrent threads
	// compete. L3Contention in [0,1] sets the partitioning strength: 1
	// means threads effectively split L3 evenly, 0 means the window is
	// fully shared (read-shared data).
	foot := s.FootprintMB * 1024 * 1024
	cold := 1 - fit(a.L3Bytes(), foot)
	cont := s.L3Contention
	if cont < 0 {
		cont = 0
	}
	if cont > 1 {
		cont = 1
	}
	share := a.L3Bytes() * ((1 - cont) + cont/float64(t))
	m3 := cold * (1 - fit(share, tw2))
	if m3 > 1 {
		m3 = 1
	}
	if m3 < 0 {
		m3 = 0
	}

	return MissRates{
		L1:           m1,
		L2:           m2,
		L3:           m3,
		BytesPerIter: s.AccessesPerIter * m1 * m2 * m3 * line,
	}
}

// memStall returns the average memory stall nanoseconds per iteration at
// frequency f (GHz), before bandwidth saturation. L1/L2 latencies are core
// cycles (scale inversely with f), L3 is uncore (mild cap sensitivity), and
// DRAM latency is fixed — the physical reason memory-bound loops tolerate
// power caps better than compute-bound ones.
func (a *Arch) memStall(spec CacheSpec, mr MissRates, fGHz float64, chunk int) float64 {
	s := spec.normalized()
	if chunk < 1 {
		chunk = 1
	}
	scale := a.BaseGHz / fGHz
	l1 := a.L1LatNS * scale
	l2 := a.L2LatNS * scale
	l3 := a.L3LatNS * (1 + a.UncoreCapSlope*(1-fGHz/a.BaseGHz))
	mem := a.MemLatNS
	perAccess := (1-mr.L1)*l1 + mr.L1*((1-mr.L2)*l2+mr.L2*((1-mr.L3)*l3+mr.L3*mem))
	// Chunk-seam coherence: the BoundaryLines shared at each chunk boundary
	// ping between writers at snoop latency (~2x L3) and do not overlap
	// with other misses — the physical cost that makes chunk=1 scheduling
	// expensive even for cache-friendly loops (false sharing).
	coherence := s.BoundaryLines / float64(chunk) * 2 * l3
	return s.AccessesPerIter*perAccess/s.MLP + coherence
}
