package sim

import (
	"reflect"
	"sync"
	"testing"
)

// clone_test.go: Machine.Clone must hand out machines that are (a) exact
// behavioural copies and (b) safe to probe concurrently. The concurrent
// test is part of the CI -race step.

func TestCloneCopiesState(t *testing.T) {
	m := newCrill(t)
	if err := m.SetPowerCap(70); err != nil {
		t.Fatal(err)
	}
	if err := m.SetUserFreqGHz(1.8); err != nil {
		t.Fatal(err)
	}
	m.Account(2.5, 60)
	m.AccountDRAM(2.5, 1e9)
	m.SetNoise(0.02, 42)

	c := m.Clone()
	if c.Arch() != m.Arch() {
		t.Error("clone does not share the Arch pointer")
	}
	if c.PowerCap() != m.PowerCap() || c.Capped() != m.Capped() {
		t.Errorf("cap: clone %g/%v, parent %g/%v", c.PowerCap(), c.Capped(), m.PowerCap(), m.Capped())
	}
	if c.UserFreqGHz() != m.UserFreqGHz() {
		t.Errorf("userGHz: clone %g, parent %g", c.UserFreqGHz(), m.UserFreqGHz())
	}
	if c.Now() != m.Now() || c.EnergyJ() != m.EnergyJ() || c.DRAMEnergyJ() != m.DRAMEnergyJ() {
		t.Error("clock/energy accumulators not copied")
	}

	// Divergence after the clone must not leak either way.
	c.Account(1, 100)
	if m.Now() != 2.5 {
		t.Error("clone Account mutated the parent clock")
	}
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	if c.PowerCap() != 70 {
		t.Error("parent SetPowerCap mutated the clone")
	}
}

// TestCloneNoiseStreamIsFresh: a clone's noise RNG restarts from the
// recorded seed, matching a machine freshly configured with the same
// SetNoise call (not the parent's mid-stream state).
func TestCloneNoiseStreamIsFresh(t *testing.T) {
	m := newCrill(t)
	m.SetNoise(0.05, 7)
	lm := balancedLoop()
	cfg := Config{Threads: 8, Sched: SchedStatic}
	probe(t, m, lm, cfg) // advance the parent's stream

	c := m.Clone()
	fresh := newCrill(t)
	fresh.SetNoise(0.05, 7)
	for i := 0; i < 4; i++ {
		got := probe(t, c, lm, cfg)
		want := probe(t, fresh, lm, cfg)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("draw %d: clone %+v, fresh machine %+v", i, got, want)
		}
	}
}

// TestCloneConcurrentProbes races many goroutines, each probing its own
// clone of one parent, and checks every result equals the serial
// reference. Run under -race this is the probe-path safety proof.
func TestCloneConcurrentProbes(t *testing.T) {
	m := newCrill(t)
	if err := m.SetPowerCap(85); err != nil {
		t.Fatal(err)
	}
	lm := rampLoop()
	cfgs := []Config{
		{Threads: 1, Sched: SchedStatic},
		{Threads: 8, Sched: SchedStatic},
		{Threads: 16, Sched: SchedDynamic, Chunk: 4},
		{Threads: 32, Sched: SchedGuided, Chunk: 8},
		{Threads: 32, Sched: SchedDynamic, Chunk: 1, Bind: BindClose},
		{Threads: 16, Sched: SchedStatic, Bind: BindClose},
	}

	// Serial reference on private machines.
	want := make([]ExecResult, len(cfgs))
	for i, cfg := range cfgs {
		want[i] = probe(t, m.Clone(), lm, cfg)
	}

	const rounds = 8
	got := make([]ExecResult, rounds*len(cfgs))
	var wg sync.WaitGroup
	for r := 0; r < rounds; r++ {
		for i, cfg := range cfgs {
			wg.Add(1)
			go func(slot int, cfg Config) {
				defer wg.Done()
				c := m.Clone()
				res, err := c.ProbeLoop(lm, cfg)
				if err != nil {
					t.Errorf("ProbeLoop(%v): %v", cfg, err)
					return
				}
				got[slot] = res
			}(r*len(cfgs)+i, cfg)
		}
	}
	wg.Wait()
	for r := 0; r < rounds; r++ {
		for i := range cfgs {
			if !reflect.DeepEqual(got[r*len(cfgs)+i], want[i]) {
				t.Errorf("round %d cfg %v: concurrent %+v != serial %+v",
					r, cfgs[i], got[r*len(cfgs)+i], want[i])
			}
		}
	}
}
