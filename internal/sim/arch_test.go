package sim

import (
	"errors"
	"testing"
)

func TestArchPresetsValid(t *testing.T) {
	for _, a := range []*Arch{Crill(), Minotaur()} {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestCrillTopology(t *testing.T) {
	a := Crill()
	if a.Cores() != 16 {
		t.Errorf("Crill cores = %d, want 16", a.Cores())
	}
	if a.HWThreads() != 32 {
		t.Errorf("Crill hw threads = %d, want 32", a.HWThreads())
	}
	if !a.CanCap || !a.HasEnergyCtr {
		t.Errorf("Crill must support capping and energy counters")
	}
}

func TestMinotaurTopology(t *testing.T) {
	a := Minotaur()
	if a.Cores() != 20 {
		t.Errorf("Minotaur cores = %d, want 20", a.Cores())
	}
	if a.HWThreads() != 160 {
		t.Errorf("Minotaur hw threads = %d, want 160", a.HWThreads())
	}
	if a.CanCap || a.HasEnergyCtr {
		t.Errorf("Minotaur must not support capping or energy counters (paper §IV-A)")
	}
}

func TestTDPSustainsAllCores(t *testing.T) {
	// The model assumes TDP runs all cores at base frequency; Validate
	// enforces it, and FreqAt must return base at TDP with all cores busy.
	for _, a := range []*Arch{Crill(), Minotaur()} {
		m, err := NewMachine(a)
		if err != nil {
			t.Fatal(err)
		}
		f, duty := m.FreqAt(a.Cores())
		if f != a.BaseGHz || duty != 1 {
			t.Errorf("%s at TDP, all cores: f=%g duty=%g, want base %g duty 1", a.Name, f, duty, a.BaseGHz)
		}
	}
}

func TestValidateRejectsBadArch(t *testing.T) {
	bad := Crill()
	bad.TDPW = 50 // cannot sustain 16 cores
	if err := bad.Validate(); err == nil {
		t.Errorf("undersized TDP should fail validation")
	}
	bad2 := Crill()
	bad2.SMTYield = []float64{1.0}
	if err := bad2.Validate(); err == nil {
		t.Errorf("SMTYield length mismatch should fail")
	}
	bad3 := Crill()
	bad3.SMTYield = []float64{1.0, 1.2}
	if err := bad3.Validate(); err == nil {
		t.Errorf("increasing SMTYield should fail")
	}
	bad4 := Crill()
	bad4.MinGHz = 3.0
	if err := bad4.Validate(); err == nil {
		t.Errorf("MinGHz > BaseGHz should fail")
	}
}

func TestPlaceScatterFirst(t *testing.T) {
	a := Crill()
	p, err := a.Place(16)
	if err != nil {
		t.Fatal(err)
	}
	if p.ActiveCores != 16 {
		t.Errorf("16 threads should activate 16 cores, got %d", p.ActiveCores)
	}
	for i, k := range p.Occupancy {
		if k != 1 {
			t.Errorf("thread %d occupancy = %d, want 1", i, k)
		}
	}

	p24, err := a.Place(24)
	if err != nil {
		t.Fatal(err)
	}
	if p24.ActiveCores != 16 {
		t.Errorf("24 threads should still use 16 cores, got %d", p24.ActiveCores)
	}
	ones, twos := 0, 0
	for _, k := range p24.Occupancy {
		switch k {
		case 1:
			ones++
		case 2:
			twos++
		default:
			t.Errorf("unexpected occupancy %d", k)
		}
	}
	// 8 doubled cores hold 16 threads, 8 single cores hold 8.
	if ones != 8 || twos != 16 {
		t.Errorf("24-thread placement: %d singles, %d doubled; want 8/16", ones, twos)
	}

	p2, err := a.Place(2)
	if err != nil {
		t.Fatal(err)
	}
	if p2.ActiveCores != 2 {
		t.Errorf("2 threads should activate 2 cores, got %d", p2.ActiveCores)
	}
}

func TestPlaceErrors(t *testing.T) {
	a := Crill()
	if _, err := a.Place(0); err == nil {
		t.Errorf("zero threads should error")
	}
	_, err := a.Place(33)
	if !errors.Is(err, ErrTooManyThreads) {
		t.Errorf("oversubscription should return ErrTooManyThreads, got %v", err)
	}
}

func TestPlaceMinotaurSMT8(t *testing.T) {
	a := Minotaur()
	p, err := a.Place(160)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range p.Occupancy {
		if k != 8 {
			t.Fatalf("thread %d occupancy = %d, want 8", i, k)
		}
	}
	p40, err := a.Place(40)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range p40.Occupancy {
		if k != 2 {
			t.Fatalf("40 threads on 20 cores: occupancy %d, want 2", k)
		}
	}
}

func TestPlaceClose(t *testing.T) {
	a := Crill()
	p, err := a.PlaceWith(16, BindClose)
	if err != nil {
		t.Fatal(err)
	}
	// 16 threads packed 2-per-core occupy only 8 cores.
	if p.ActiveCores != 8 {
		t.Errorf("close placement of 16 threads: %d active cores, want 8", p.ActiveCores)
	}
	for i, k := range p.Occupancy {
		if k != 2 {
			t.Errorf("thread %d occupancy = %d, want 2", i, k)
		}
	}
	// Odd counts leave the last core partially filled.
	p3, err := a.PlaceWith(3, BindClose)
	if err != nil {
		t.Fatal(err)
	}
	if p3.ActiveCores != 2 {
		t.Errorf("close placement of 3 threads: %d cores, want 2", p3.ActiveCores)
	}
	if p3.Occupancy[0] != 2 || p3.Occupancy[2] != 1 {
		t.Errorf("occupancy = %v", p3.Occupancy)
	}
	if _, err := a.PlaceWith(4, BindPolicy(9)); err == nil {
		t.Errorf("unknown policy must fail")
	}
}

// Under a tight cap, close binding concentrates the budget on fewer cores
// (higher frequency) at the price of SMT sharing — the placement trade-off.
func TestClosePlacementFrequencyTradeOff(t *testing.T) {
	m := newCrill(t)
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	lm := balancedLoop()
	spread := probe(t, m, lm, Config{Threads: 16, Sched: SchedStatic})
	close_ := probe(t, m, lm, Config{Threads: 16, Sched: SchedStatic, Bind: BindClose})
	if close_.FreqGHz <= spread.FreqGHz {
		t.Errorf("close binding must clock higher under a cap: %v vs %v", close_.FreqGHz, spread.FreqGHz)
	}
	if close_.AvgPowerW > 55*1.02 {
		t.Errorf("close binding must still respect the cap: %v", close_.AvgPowerW)
	}
}
