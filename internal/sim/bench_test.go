package sim

import (
	"strconv"
	"testing"
)

// Micro-benchmarks for the simulator hot paths: one region execution under
// each scheduling policy, at NPB-like and LULESH-like iteration counts.
// These bound the cost of the experiment harness (an offline search is
// ~250 of these per region).

func benchLoopKind(iters int, kind ImbalanceKind) *LoopModel {
	im := Imbalance{Kind: kind}
	if kind == Ramp {
		im.Param = 0.8
	}
	return &LoopModel{
		Name:          "bench",
		Iters:         iters,
		CompNSPerIter: 15000,
		Imbalance:     im,
		Mem: CacheSpec{
			AccessesPerIter:  4000,
			BytesPerIter:     8192,
			TemporalWindowKB: 600,
			FootprintMB:      250,
			BoundaryLines:    64,
			PassesPerChunk:   3,
			L3Contention:     0.9,
			MLP:              2,
		},
	}
}

func benchLoop(iters int) *LoopModel { return benchLoopKind(iters, Ramp) }

func benchProbe(b *testing.B, iters int, cfg Config) {
	b.Helper()
	m, err := NewMachine(Crill())
	if err != nil {
		b.Fatal(err)
	}
	lm := benchLoop(iters)
	lm.Weights() // exclude one-time weight materialisation
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.ProbeLoop(lm, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProbeStaticNPB(b *testing.B) {
	benchProbe(b, 10404, Config{Threads: 32, Sched: SchedStatic})
}

func BenchmarkProbeDynamicChunk1NPB(b *testing.B) {
	benchProbe(b, 10404, Config{Threads: 32, Sched: SchedDynamic, Chunk: 1})
}

func BenchmarkProbeGuidedNPB(b *testing.B) {
	benchProbe(b, 10404, Config{Threads: 32, Sched: SchedGuided, Chunk: 1})
}

func BenchmarkProbeDynamicLULESH(b *testing.B) {
	benchProbe(b, 91125, Config{Threads: 32, Sched: SchedDynamic, Chunk: 1})
}

// BenchmarkProbeGrid covers the full {schedule} × {chunk} × {weight kind}
// matrix at NPB scale. The Uniform rows hit the closed-form/batched fast
// paths; the Ramp rows hit the reference heap simulator, so the grid shows
// both the fast-path win and that the reference path did not regress.
func BenchmarkProbeGrid(b *testing.B) {
	scheds := []struct {
		name string
		s    Schedule
	}{{"Static", SchedStatic}, {"Dynamic", SchedDynamic}, {"Guided", SchedGuided}}
	kinds := []struct {
		name string
		k    ImbalanceKind
	}{{"Uniform", Uniform}, {"Ramp", Ramp}}
	for _, sc := range scheds {
		for _, chunk := range []int{1, 8, 128} {
			for _, kd := range kinds {
				name := sc.name + "/Chunk" + strconv.Itoa(chunk) + "/" + kd.name
				b.Run(name, func(b *testing.B) {
					m, err := NewMachine(Crill())
					if err != nil {
						b.Fatal(err)
					}
					lm := benchLoopKind(10404, kd.k)
					cfg := Config{Threads: 32, Sched: sc.s, Chunk: chunk}
					if kd.k != Uniform {
						lm.Weights() // exclude one-time weight materialisation
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := m.ProbeLoop(lm, cfg); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func BenchmarkWeightSum(b *testing.B) {
	lm := benchLoop(91125)
	lm.Weights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lm.WeightSum(i%1000, i%1000+4096)
	}
}

func BenchmarkMissRates(b *testing.B) {
	a := Crill()
	spec := benchLoop(1).Mem
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.missRates(spec, 32, 8, 2)
	}
}
