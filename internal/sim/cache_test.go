package sim

import (
	"testing"
	"testing/quick"
)

func specCompute() CacheSpec {
	return CacheSpec{
		AccessesPerIter:  100,
		BytesPerIter:     256,
		StrideElems:      1,
		TemporalWindowKB: 16,
		FootprintMB:      4,
		BoundaryLines:    2,
		PassesPerChunk:   1,
		L3Contention:     0.2,
		MLP:              4,
	}
}

func TestFitCurve(t *testing.T) {
	if fit(100, 0) != 1 {
		t.Errorf("empty working set always fits")
	}
	if fit(0, 100) != 0 {
		t.Errorf("zero cache never fits")
	}
	if got := fit(100, 100); got != 0.5 {
		t.Errorf("fit at capacity = %v, want 0.5", got)
	}
	if fit(100, 10) <= fit(100, 1000) {
		t.Errorf("fit must decrease with working set")
	}
}

func TestStrideRaisesL1Miss(t *testing.T) {
	a := Crill()
	unit := specCompute()
	strided := specCompute()
	strided.StrideElems = 64 // 512-byte stride: every access a new line
	mUnit := a.missRates(unit, 16, 8, 1)
	mStr := a.missRates(strided, 16, 8, 1)
	if mStr.L1 <= mUnit.L1 {
		t.Errorf("long stride must raise L1 miss rate: %v vs %v", mStr.L1, mUnit.L1)
	}
}

func TestSMTSharingRaisesMisses(t *testing.T) {
	a := Crill()
	s := specCompute()
	s.TemporalWindowKB = 24 // close to L1 so halving matters
	m1 := a.missRates(s, 16, 8, 1)
	m2 := a.missRates(s, 32, 8, 2)
	if m2.L1 <= m1.L1 {
		t.Errorf("SMT sibling must raise L1 miss (halved cache): %v vs %v", m2.L1, m1.L1)
	}
	if m2.L2 < m1.L2 {
		t.Errorf("SMT sibling must not lower L2 miss: %v vs %v", m2.L2, m1.L2)
	}
}

func TestTinyChunksBoundaryPenalty(t *testing.T) {
	a := Crill()
	s := specCompute()
	small := a.missRates(s, 16, 1, 1)
	big := a.missRates(s, 16, 64, 1)
	if small.L1 <= big.L1 {
		t.Errorf("chunk=1 must pay boundary reloads: %v vs %v", small.L1, big.L1)
	}
}

func TestChunkTilingHelpsL2(t *testing.T) {
	a := Crill()
	s := specCompute()
	s.PassesPerChunk = 4
	s.BytesPerIter = 4096
	s.TemporalWindowKB = 2048            // without tiling, window >> L2
	mSmall := a.missRates(s, 16, 16, 1)  // 64 KB chunk fits L2
	mHuge := a.missRates(s, 16, 2048, 1) // 8 MB chunk does not
	if mSmall.L2 >= mHuge.L2 {
		t.Errorf("L2-resident chunks should hit more: %v vs %v", mSmall.L2, mHuge.L2)
	}
}

func TestThreadsRaiseL3Competition(t *testing.T) {
	a := Crill()
	s := specCompute()
	s.FootprintMB = 60 // larger than L3 so the term matters
	s.L3Contention = 0.8
	m8 := a.missRates(s, 8, 32, 1)
	m32 := a.missRates(s, 32, 32, 2)
	if m32.L3 <= m8.L3 {
		t.Errorf("more threads must raise L3 miss under contention: %v vs %v", m32.L3, m8.L3)
	}
}

func TestMemStallFrequencyScaling(t *testing.T) {
	a := Crill()
	s := specCompute()
	mr := a.missRates(s, 16, 8, 1)
	atBase := a.memStall(s, mr, a.BaseGHz, 8)
	atHalf := a.memStall(s, mr, a.BaseGHz/2, 8)
	if atHalf <= atBase {
		t.Errorf("lower frequency must raise core-clocked latency: %v vs %v", atHalf, atBase)
	}
	// But far less than 2x, because DRAM latency is fixed: check the
	// memory-bound share dampens the scaling.
	if atHalf >= 2*atBase {
		t.Errorf("memory stall must not scale fully with frequency: %v vs %v", atHalf, atBase)
	}
}

func TestMissRatesBounded(t *testing.T) {
	f := func(acc, bytes, twKB, foot, bl, passes, cont float64, stride uint8, tt, c, k uint8) bool {
		s := CacheSpec{
			AccessesPerIter:  mod(acc, 1e4),
			BytesPerIter:     mod(bytes, 1e6),
			StrideElems:      int(stride%100) + 1,
			TemporalWindowKB: mod(twKB, 1e5),
			FootprintMB:      mod(foot, 1e4),
			BoundaryLines:    mod(bl, 100),
			PassesPerChunk:   1 + mod(passes, 10),
			L3Contention:     mod(cont, 1),
			MLP:              2,
		}
		a := Crill()
		threads := int(tt%32) + 1
		chunk := int(c)*3 + 1
		occ := int(k%2) + 1
		mr := a.missRates(s, threads, chunk, occ)
		ok := mr.L1 >= 0 && mr.L1 <= 1 && mr.L2 >= 0 && mr.L2 <= 1 && mr.L3 >= 0 && mr.L3 <= 1
		return ok && mr.BytesPerIter >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func mod(x, m float64) float64 {
	if x != x || x > 1e300 || x < -1e300 { // NaN/huge guard
		return m / 2
	}
	if x < 0 {
		x = -x
	}
	for x >= m {
		x /= 2
	}
	return x
}
