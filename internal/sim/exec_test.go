package sim

import (
	"math"
	"testing"
)

// balancedLoop is a compute-leaning, well-balanced kernel.
func balancedLoop() *LoopModel {
	return &LoopModel{
		Name:          "balanced",
		Iters:         2048,
		CompNSPerIter: 50000,
		Imbalance:     Imbalance{Kind: Uniform},
		Mem: CacheSpec{
			AccessesPerIter:  500,
			BytesPerIter:     2048,
			StrideElems:      1,
			TemporalWindowKB: 24,
			FootprintMB:      8,
			BoundaryLines:    2,
			MLP:              4,
		},
	}
}

// rampLoop is imbalanced: late iterations cost ~3x early ones.
func rampLoop() *LoopModel {
	lm := balancedLoop()
	lm.Name = "ramp"
	lm.Imbalance = Imbalance{Kind: Ramp, Param: 1.4}
	return lm
}

// memLoop is strongly memory-bound.
func memLoop() *LoopModel {
	return &LoopModel{
		Name:          "membound",
		Iters:         2048,
		CompNSPerIter: 1000,
		Imbalance:     Imbalance{Kind: Uniform},
		Mem: CacheSpec{
			AccessesPerIter:  4000,
			BytesPerIter:     32768,
			StrideElems:      8,
			TemporalWindowKB: 65536, // streaming: no short re-reference window
			FootprintMB:      256,
			BoundaryLines:    4,
			L3Contention:     0.6,
			MLP:              12, // streaming: hardware prefetchers hide most latency
		},
	}
}

func probe(t *testing.T, m *Machine, lm *LoopModel, cfg Config) ExecResult {
	t.Helper()
	res, err := m.ProbeLoop(lm, cfg)
	if err != nil {
		t.Fatalf("ProbeLoop(%v): %v", cfg, err)
	}
	return res
}

func TestProbeBasicInvariants(t *testing.T) {
	m := newCrill(t)
	for _, cfg := range []Config{
		{Threads: 1, Sched: SchedStatic},
		{Threads: 16, Sched: SchedStatic},
		{Threads: 16, Sched: SchedDynamic, Chunk: 8},
		{Threads: 32, Sched: SchedGuided, Chunk: 4},
		{Threads: 24, Sched: SchedDynamic, Chunk: 1},
	} {
		res := probe(t, m, balancedLoop(), cfg)
		if res.TimeS <= 0 || res.EnergyJ <= 0 {
			t.Errorf("%v: non-positive time/energy", cfg)
		}
		if res.AvgPowerW < m.Arch().StaticW*0.99 {
			t.Errorf("%v: average power %v below static", cfg, res.AvgPowerW)
		}
		if res.AvgPowerW > m.Arch().TDPW*1.05 {
			t.Errorf("%v: average power %v above TDP", cfg, res.AvgPowerW)
		}
		if len(res.PerThreadBusyS) != cfg.Threads || len(res.PerThreadWaitS) != cfg.Threads {
			t.Errorf("%v: per-thread slices sized wrong", cfg)
		}
		if res.LoopS > res.TimeS {
			t.Errorf("%v: busy time exceeds region time", cfg)
		}
	}
}

func TestParallelSpeedup(t *testing.T) {
	m := newCrill(t)
	t1 := probe(t, m, balancedLoop(), Config{Threads: 1, Sched: SchedStatic}).TimeS
	t8 := probe(t, m, balancedLoop(), Config{Threads: 8, Sched: SchedStatic}).TimeS
	t16 := probe(t, m, balancedLoop(), Config{Threads: 16, Sched: SchedStatic}).TimeS
	if s := t1 / t8; s < 6 || s > 8.2 {
		t.Errorf("8-thread speedup = %v, want near-linear for a balanced compute loop", s)
	}
	if t16 >= t8 {
		t.Errorf("16 threads should beat 8 for a compute loop: %v vs %v", t16, t8)
	}
}

func TestSMTYieldLimitsSpeedup(t *testing.T) {
	m := newCrill(t)
	t16 := probe(t, m, balancedLoop(), Config{Threads: 16, Sched: SchedStatic}).TimeS
	t32 := probe(t, m, balancedLoop(), Config{Threads: 32, Sched: SchedStatic}).TimeS
	s := t16 / t32
	// 32 threads use SMT siblings at 0.62 yield: total throughput 1.24x.
	if s < 1.0 || s > 1.4 {
		t.Errorf("SMT speedup 16->32 = %v, want within (1.0, 1.4)", s)
	}
}

func TestImbalanceSchedules(t *testing.T) {
	m := newCrill(t)
	lm := rampLoop()
	static := probe(t, m, lm, Config{Threads: 16, Sched: SchedStatic}) // default chunk: one block each
	dyn := probe(t, m, lm, Config{Threads: 16, Sched: SchedDynamic, Chunk: 16})
	guided := probe(t, m, lm, Config{Threads: 16, Sched: SchedGuided, Chunk: 8})
	if dyn.TimeS >= static.TimeS {
		t.Errorf("dynamic should beat static on a ramp: %v vs %v", dyn.TimeS, static.TimeS)
	}
	if guided.TimeS >= static.TimeS {
		t.Errorf("guided should beat static on a ramp: %v vs %v", guided.TimeS, static.TimeS)
	}
	if static.BarrierS <= dyn.BarrierS {
		t.Errorf("static barrier time should exceed dynamic: %v vs %v", static.BarrierS, dyn.BarrierS)
	}
}

func TestDispatchOverheadTinyChunks(t *testing.T) {
	m := newCrill(t)
	lm := &LoopModel{ // very cheap iterations
		Name:          "cheap",
		Iters:         200000,
		CompNSPerIter: 40,
		Imbalance:     Imbalance{Kind: Uniform},
		Mem:           CacheSpec{AccessesPerIter: 4, BytesPerIter: 32, TemporalWindowKB: 8, FootprintMB: 2, MLP: 4},
	}
	c1 := probe(t, m, lm, Config{Threads: 16, Sched: SchedDynamic, Chunk: 1})
	c256 := probe(t, m, lm, Config{Threads: 16, Sched: SchedDynamic, Chunk: 256})
	if c1.TimeS <= c256.TimeS {
		t.Errorf("chunk=1 dynamic must drown in dispatch for cheap iterations: %v vs %v", c1.TimeS, c256.TimeS)
	}
	if c1.DispatchS <= c256.DispatchS {
		t.Errorf("dispatch seconds must grow with chunk count")
	}
	if c1.Chunks != 200000 {
		t.Errorf("chunk=1 should dispatch one chunk per iteration, got %d", c1.Chunks)
	}
}

func TestGuidedDispatchesFewerChunks(t *testing.T) {
	m := newCrill(t)
	lm := balancedLoop()
	dyn := probe(t, m, lm, Config{Threads: 16, Sched: SchedDynamic, Chunk: 1})
	gui := probe(t, m, lm, Config{Threads: 16, Sched: SchedGuided, Chunk: 1})
	if gui.Chunks >= dyn.Chunks {
		t.Errorf("guided must dispatch fewer chunks than dynamic,1: %d vs %d", gui.Chunks, dyn.Chunks)
	}
}

func TestPowerCapSlowsComputeMoreThanMemory(t *testing.T) {
	m := newCrill(t)
	comp, mem := balancedLoop(), memLoop()
	cfg := Config{Threads: 16, Sched: SchedStatic}

	compBase := probe(t, m, comp, cfg).TimeS
	memBase := probe(t, m, mem, cfg).TimeS
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	compCap := probe(t, m, comp, cfg).TimeS
	memCap := probe(t, m, mem, cfg).TimeS

	compSlow := compCap / compBase
	memSlow := memCap / memBase
	if compSlow <= 1.05 {
		t.Errorf("a 55W cap must visibly slow a compute loop, slowdown %v", compSlow)
	}
	if memSlow >= compSlow {
		t.Errorf("memory-bound loop must tolerate caps better: %v vs %v", memSlow, compSlow)
	}
}

func TestCapReducesPower(t *testing.T) {
	m := newCrill(t)
	cfg := Config{Threads: 16, Sched: SchedStatic}
	base := probe(t, m, balancedLoop(), cfg)
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	capped := probe(t, m, balancedLoop(), cfg)
	if capped.AvgPowerW >= base.AvgPowerW {
		t.Errorf("cap must reduce average power: %v vs %v", capped.AvgPowerW, base.AvgPowerW)
	}
	if capped.AvgPowerW > 55*1.02 {
		t.Errorf("average power %v must respect the 55W cap", capped.AvgPowerW)
	}
	if capped.FreqGHz >= base.FreqGHz {
		t.Errorf("cap must reduce frequency: %v vs %v", capped.FreqGHz, base.FreqGHz)
	}
}

func TestBandwidthSaturation(t *testing.T) {
	m := newCrill(t)
	lm := memLoop()
	t8 := probe(t, m, lm, Config{Threads: 8, Sched: SchedStatic}).TimeS
	t16 := probe(t, m, lm, Config{Threads: 16, Sched: SchedStatic}).TimeS
	s := t8 / t16
	if s > 1.6 {
		t.Errorf("memory-bound loop should not scale 8->16 threads, speedup %v", s)
	}
}

func TestSerialSectionBecomesBarrier(t *testing.T) {
	m := newCrill(t)
	lm := balancedLoop()
	lm.SerialNS = 5e7 // 50 ms of master-only work
	res := probe(t, m, lm, Config{Threads: 16, Sched: SchedStatic})
	if res.SerialS <= 0 {
		t.Fatalf("serial time missing")
	}
	// The other 15 threads wait out most of the serial section.
	if res.BarrierS < 0.8*res.SerialS*15 {
		t.Errorf("barrier %v should absorb the serial section (%v x 15)", res.BarrierS, res.SerialS)
	}
	if f := res.BarrierFrac(); f < 0.3 {
		t.Errorf("barrier fraction %v should dominate for a serial-heavy region", f)
	}
}

func TestExecuteLoopAccounts(t *testing.T) {
	m := newCrill(t)
	res, err := m.ExecuteLoop(balancedLoop(), Config{Threads: 16, Sched: SchedStatic})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Now()-res.TimeS) > 1e-12 {
		t.Errorf("clock %v != region time %v", m.Now(), res.TimeS)
	}
	if math.Abs(m.EnergyJ()-res.EnergyJ) > 1e-9 {
		t.Errorf("energy %v != region energy %v", m.EnergyJ(), res.EnergyJ)
	}
}

func TestProbeDoesNotAccount(t *testing.T) {
	m := newCrill(t)
	if _, err := m.ProbeLoop(balancedLoop(), Config{Threads: 4, Sched: SchedStatic}); err != nil {
		t.Fatal(err)
	}
	if m.Now() != 0 || m.EnergyJ() != 0 {
		t.Errorf("ProbeLoop must not advance machine state")
	}
}

func TestExecErrors(t *testing.T) {
	m := newCrill(t)
	if _, err := m.ProbeLoop(balancedLoop(), Config{Threads: 0, Sched: SchedStatic}); err == nil {
		t.Errorf("zero threads must error")
	}
	if _, err := m.ProbeLoop(balancedLoop(), Config{Threads: 64, Sched: SchedStatic}); err == nil {
		t.Errorf("oversubscription must error")
	}
	if _, err := m.ProbeLoop(&LoopModel{Name: "bad", Iters: 0}, Config{Threads: 1, Sched: SchedStatic}); err == nil {
		t.Errorf("invalid loop must error")
	}
	if _, err := m.ProbeLoop(balancedLoop(), Config{Threads: 4, Sched: Schedule(99)}); err == nil {
		t.Errorf("unknown schedule must error")
	}
}

func TestResolveChunk(t *testing.T) {
	if got := ResolveChunk(SchedStatic, 0, 100, 16); got != 7 {
		t.Errorf("static default chunk = %d, want ceil(100/16)=7", got)
	}
	if got := ResolveChunk(SchedDynamic, 0, 100, 16); got != 1 {
		t.Errorf("dynamic default chunk = %d, want 1", got)
	}
	if got := ResolveChunk(SchedGuided, 0, 100, 16); got != 1 {
		t.Errorf("guided default chunk = %d, want 1", got)
	}
	if got := ResolveChunk(SchedStatic, 42, 100, 16); got != 42 {
		t.Errorf("explicit chunk must pass through, got %d", got)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() ExecResult {
		m, err := NewMachine(Crill())
		if err != nil {
			t.Fatal(err)
		}
		lm := rampLoop()
		return probe(t, m, lm, Config{Threads: 24, Sched: SchedGuided, Chunk: 2})
	}
	a, b := run(), run()
	if a.TimeS != b.TimeS || a.EnergyJ != b.EnergyJ || a.BarrierS != b.BarrierS {
		t.Errorf("simulation must be deterministic: %+v vs %+v", a, b)
	}
}

func TestConfigString(t *testing.T) {
	c := Config{Threads: 16, Sched: SchedGuided, Chunk: 8}
	if got := c.String(); got != "16, guided, 8" {
		t.Errorf("Config.String = %q", got)
	}
	d := Config{Threads: 32, Sched: SchedStatic}
	if got := d.String(); got != "32, static, default" {
		t.Errorf("Config.String = %q", got)
	}
}

func TestFewThreadsHigherFreqUnderCap(t *testing.T) {
	// Under a tight cap, a mostly-memory-bound loop can run as fast or
	// faster with fewer threads at higher frequency — the Fig. 1 effect.
	m := newCrill(t)
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	lm := memLoop()
	t32 := probe(t, m, lm, Config{Threads: 32, Sched: SchedStatic})
	t8 := probe(t, m, lm, Config{Threads: 8, Sched: SchedStatic})
	if t8.FreqGHz <= t32.FreqGHz {
		t.Fatalf("8 threads must clock higher than 32 under 55W: %v vs %v", t8.FreqGHz, t32.FreqGHz)
	}
	if t8.TimeS > t32.TimeS*1.5 {
		t.Errorf("8 threads at high frequency should stay competitive: %v vs %v", t8.TimeS, t32.TimeS)
	}
}
