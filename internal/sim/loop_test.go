package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestWeightsMeanOne(t *testing.T) {
	cases := []Imbalance{
		{Kind: Uniform},
		{Kind: Ramp, Param: 1.2},
		{Kind: Blocks, Param: 4, Blocks: 3},
		{Kind: Random, Param: 0.5, Seed: 42},
		{Kind: Sawtooth, Param: 1.0, Blocks: 5},
	}
	for _, im := range cases {
		lm := &LoopModel{Name: "w", Iters: 1000, CompNSPerIter: 100, Imbalance: im}
		ws := lm.Weights()
		var sum float64
		for _, w := range ws {
			if w <= 0 {
				t.Errorf("%v: non-positive weight %v", im.Kind, w)
			}
			sum += w
		}
		mean := sum / float64(len(ws))
		if math.Abs(mean-1) > 1e-9 {
			t.Errorf("%v: mean weight = %v, want 1", im.Kind, mean)
		}
	}
}

func TestWeightSumPrefix(t *testing.T) {
	lm := &LoopModel{Name: "p", Iters: 100, CompNSPerIter: 1, Imbalance: Imbalance{Kind: Ramp, Param: 1}}
	ws := lm.Weights()
	var direct float64
	for i := 10; i < 37; i++ {
		direct += ws[i]
	}
	if got := lm.WeightSum(10, 37); math.Abs(got-direct) > 1e-9 {
		t.Errorf("WeightSum = %v, want %v", got, direct)
	}
	// Clamping.
	if got := lm.WeightSum(-5, 200); math.Abs(got-float64(lm.Iters)) > 1e-6 {
		t.Errorf("full clamped WeightSum = %v, want ~%d", got, lm.Iters)
	}
	if lm.WeightSum(50, 50) != 0 || lm.WeightSum(60, 40) != 0 {
		t.Errorf("empty ranges must sum to 0")
	}
}

func TestRandomWeightsDeterministic(t *testing.T) {
	mk := func() []float64 {
		lm := &LoopModel{Name: "r", Iters: 64, CompNSPerIter: 1,
			Imbalance: Imbalance{Kind: Random, Param: 0.7, Seed: 7}}
		return lm.Weights()
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed must give same weights (index %d: %v vs %v)", i, a[i], b[i])
		}
	}
	lm2 := &LoopModel{Name: "r2", Iters: 64, CompNSPerIter: 1,
		Imbalance: Imbalance{Kind: Random, Param: 0.7, Seed: 8}}
	c := lm2.Weights()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds should give different weights")
	}
}

func TestImbalanceRatio(t *testing.T) {
	bal := &LoopModel{Name: "b", Iters: 100, CompNSPerIter: 1, Imbalance: Imbalance{Kind: Uniform}}
	if r := bal.ImbalanceRatio(); math.Abs(r-1) > 1e-9 {
		t.Errorf("uniform imbalance ratio = %v, want 1", r)
	}
	im := &LoopModel{Name: "i", Iters: 100, CompNSPerIter: 1, Imbalance: Imbalance{Kind: Blocks, Param: 5, Blocks: 2}}
	if r := im.ImbalanceRatio(); r <= 1.5 {
		t.Errorf("blocky loop should be noticeably imbalanced, ratio = %v", r)
	}
}

func TestLoopValidate(t *testing.T) {
	if err := (&LoopModel{Name: "x", Iters: 0}).Validate(); err == nil {
		t.Errorf("zero iterations should fail")
	}
	if err := (&LoopModel{Name: "x", Iters: 10, CompNSPerIter: -1}).Validate(); err == nil {
		t.Errorf("negative cost should fail")
	}
	if err := (&LoopModel{Name: "x", Iters: 10, CompNSPerIter: 5}).Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestTotalWork(t *testing.T) {
	lm := &LoopModel{Name: "t", Iters: 50, CompNSPerIter: 3}
	if got := lm.TotalWork(); got != 150 {
		t.Errorf("TotalWork = %v, want 150", got)
	}
}

// Property: for any valid imbalance spec, WeightSum over the full range
// equals Iters (mean-1 normalisation) and all partial sums are monotone.
func TestWeightSumProperty(t *testing.T) {
	f := func(kind uint8, param float64, blocks uint8, seed int64, n uint16) bool {
		iters := int(n%2000) + 1
		lm := &LoopModel{
			Name:          "q",
			Iters:         iters,
			CompNSPerIter: 1,
			Imbalance: Imbalance{
				Kind:   ImbalanceKind(kind % 5),
				Param:  math.Mod(math.Abs(param), 3),
				Blocks: int(blocks%8) + 1,
				Seed:   seed,
			},
		}
		total := lm.WeightSum(0, iters)
		if math.Abs(total-float64(iters)) > 1e-6*float64(iters) {
			return false
		}
		prev := 0.0
		for _, cut := range []int{0, iters / 3, 2 * iters / 3, iters} {
			s := lm.WeightSum(0, cut)
			if s < prev-1e-9 {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestValidateMemProfile(t *testing.T) {
	base := func() *LoopModel {
		return &LoopModel{Name: "m", Iters: 8, CompNSPerIter: 1,
			Mem: CacheSpec{AccessesPerIter: 10, BytesPerIter: 64, L3Contention: 0.5}}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	bad := base()
	bad.Mem.AccessesPerIter = -1
	if err := bad.Validate(); err == nil {
		t.Errorf("negative accesses must fail")
	}
	bad = base()
	bad.Mem.L3Contention = 1.5
	if err := bad.Validate(); err == nil {
		t.Errorf("contention > 1 must fail")
	}
	bad = base()
	bad.Mem.FootprintMB = -4
	if err := bad.Validate(); err == nil {
		t.Errorf("negative footprint must fail")
	}
}
