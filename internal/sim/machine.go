package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// Machine is a mutable instance of an Arch: it carries the current package
// power cap, the simulated clock, and the accumulated package energy. The
// internal/rapl package exposes this state through a libmsr-style
// interface; the internal/omp runtime advances it as regions execute.
//
// A Machine is NOT safe for concurrent use: probes reuse per-machine
// scratch buffers and the noise RNG is stateful. Concurrent harness code
// must give each goroutine its own Machine (they are cheap to build).
type Machine struct {
	arch *Arch

	// scratch holds the reusable ProbeLoop buffers; placeCache memoises
	// Placement by (threads, bind), both keeping the probe hot path
	// allocation free.
	scratch    probeScratch
	placeCache map[int]Placement

	capW    float64 // 0 = uncapped (TDP)
	userGHz float64 // user-requested frequency ceiling (0 = none)
	clockS  float64 // simulated wall clock, seconds
	energyJ float64 // accumulated package energy, joules
	dramJ   float64 // accumulated DRAM energy, joules

	// Measurement noise: run-to-run variability, off by default. The
	// benchmark harness enables it to make the paper's protocol (§IV-D:
	// average of three runs on Crill, minimum of three on shared Minotaur)
	// observable.
	noiseSigma float64
	noiseSeed  int64
	noiseRNG   *rand.Rand
}

// SetNoise enables multiplicative log-normal run-to-run noise with the
// given sigma (0 disables). The stream is seeded, so runs are reproducible.
func (m *Machine) SetNoise(sigma float64, seed int64) {
	m.noiseSigma = sigma
	m.noiseSeed = seed
	if sigma > 0 {
		m.noiseRNG = rand.New(rand.NewSource(seed))
	} else {
		m.noiseRNG = nil
	}
}

// Clone returns an independent machine for concurrent probing. The clone
// shares only the immutable *Arch; the probe scratch buffers, the placement
// cache (rebuilt lazily), and the noise RNG are private, so probing a clone
// from one goroutine never races with probes on the original or on sibling
// clones. Power cap, user frequency request, clock, and energy accumulators
// are copied. If noise is enabled the clone's RNG restarts from the recorded
// seed — the clone behaves like a fresh machine configured with the same
// SetNoise call, not like a fork of the parent mid-stream.
func (m *Machine) Clone() *Machine {
	c := &Machine{
		arch:       m.arch,
		capW:       m.capW,
		userGHz:    m.userGHz,
		clockS:     m.clockS,
		energyJ:    m.energyJ,
		dramJ:      m.dramJ,
		noiseSigma: m.noiseSigma,
		noiseSeed:  m.noiseSeed,
	}
	if c.noiseSigma > 0 {
		c.noiseRNG = rand.New(rand.NewSource(c.noiseSeed))
	}
	return c
}

// noiseFactor draws the next multiplicative perturbation (1 when disabled).
func (m *Machine) noiseFactor() float64 {
	if m.noiseRNG == nil {
		return 1
	}
	s := m.noiseSigma
	return math.Exp(m.noiseRNG.NormFloat64()*s - s*s/2)
}

// NewMachine builds a machine for the given architecture, validating it.
func NewMachine(arch *Arch) (*Machine, error) {
	if err := arch.Validate(); err != nil {
		return nil, err
	}
	return &Machine{arch: arch}, nil
}

// Arch returns the immutable architecture description.
func (m *Machine) Arch() *Arch { return m.arch }

// placement returns the (cached) placement of t threads under bind.
// Placements depend only on (arch, t, bind), so each distinct configuration
// is computed once per machine and reused allocation-free afterwards.
func (m *Machine) placement(t int, bind BindPolicy) (Placement, error) {
	if bind != BindSpread && bind != BindClose {
		return m.arch.PlaceWith(t, bind) // unknown policy: let it error, uncached
	}
	key := t<<1 | int(bind)
	if p, ok := m.placeCache[key]; ok {
		return p, nil
	}
	p, err := m.arch.PlaceWith(t, bind)
	if err != nil {
		return Placement{}, err
	}
	if m.placeCache == nil {
		m.placeCache = make(map[int]Placement)
	}
	m.placeCache[key] = p
	return p, nil
}

// SetPowerCap sets the package power limit in watts. A cap of 0 removes the
// limit (run at TDP). Architectures without capping privilege (Minotaur)
// reject non-zero caps, mirroring the paper's experimental constraints.
func (m *Machine) SetPowerCap(w float64) error {
	if w == 0 { //arcslint:ignore floatcmp 0 is the uncap sentinel, passed verbatim by callers
		m.capW = 0
		return nil
	}
	if !m.arch.CanCap {
		return fmt.Errorf("sim: %s: no power-capping privilege", m.arch.Name)
	}
	if w < 0 {
		return fmt.Errorf("sim: negative power cap %g", w)
	}
	if w > m.arch.TDPW {
		w = m.arch.TDPW // RAPL clamps limits above TDP
	}
	m.capW = w
	return nil
}

// PowerCap returns the effective package limit in watts (TDP if uncapped).
func (m *Machine) PowerCap() float64 {
	if m.capW == 0 { //arcslint:ignore floatcmp 0 is the uncap sentinel, assigned verbatim
		return m.arch.TDPW
	}
	return m.capW
}

// Capped reports whether an explicit cap below TDP is in force.
//
//arcslint:ignore floatcmp 0 is the uncap sentinel, assigned verbatim
func (m *Machine) Capped() bool { return m.capW != 0 && m.capW < m.arch.TDPW }

// SetUserFreqGHz requests a frequency ceiling below the DVFS governor's
// choice — the paper's §VII future-work DVFS policy. Zero clears the
// request. Requests outside [MinGHz, BaseGHz] are rejected.
func (m *Machine) SetUserFreqGHz(f float64) error {
	if f == 0 { //arcslint:ignore floatcmp 0 is the clear-request sentinel, passed verbatim
		m.userGHz = 0
		return nil
	}
	if f < m.arch.MinGHz || f > m.arch.BaseGHz {
		return fmt.Errorf("sim: frequency %g outside [%g, %g] GHz", f, m.arch.MinGHz, m.arch.BaseGHz)
	}
	m.userGHz = f
	return nil
}

// UserFreqGHz returns the current user frequency request (0 = none).
func (m *Machine) UserFreqGHz() float64 { return m.userGHz }

// FreqAt solves the DVFS governor: with nActive busy cores under the
// current cap, each core gets (cap - static)/nActive watts of dynamic
// budget; dynamic power follows the cubic law P(f) = DynCoreW*(f/base)^3.
// It returns the frequency and a duty factor: below MinGHz the core
// duty-cycles (clock gating), losing throughput linearly.
func (m *Machine) FreqAt(nActive int) (ghz, duty float64) {
	a := m.arch
	if nActive <= 0 {
		return a.BaseGHz, 1
	}
	budget := m.PowerCap() - a.StaticW
	if budget <= 0 {
		// Pathological cap below static power: deepest duty cycling.
		return a.MinGHz, 0.05
	}
	perCore := budget / float64(nActive)
	ratio := perCore / a.DynCoreW
	f := a.BaseGHz * math.Pow(ratio, 1/m.powerLawExp())
	if f > a.BaseGHz {
		f = a.BaseGHz
	}
	// A user DVFS request caps the governor's choice (it can only lower
	// frequency, trading time for power headroom).
	if m.userGHz > 0 && m.userGHz < f {
		f = m.userGHz
	}
	if f >= a.MinGHz {
		return f, 1
	}
	// Below the lowest DVFS point: run at MinGHz but gate the clock so the
	// average power meets the budget.
	pMin := a.DynCoreW * math.Pow(a.MinGHz/a.BaseGHz, m.powerLawExp())
	duty = perCore / pMin
	if duty < 0.05 {
		duty = 0.05
	}
	return a.MinGHz, duty
}

// CorePowerAt returns the dynamic power (watts) of one fully busy core at
// frequency ghz with the given duty factor.
func (m *Machine) CorePowerAt(ghz, duty float64) float64 {
	a := m.arch
	return a.DynCoreW * math.Pow(ghz/a.BaseGHz, m.powerLawExp()) * duty
}

// powerLawExp returns the dynamic power law exponent (cubic by default,
// overridable per architecture for the DVFS-law ablation).
func (m *Machine) powerLawExp() float64 {
	if m.arch.PowerLawExp > 0 {
		return m.arch.PowerLawExp
	}
	return 3
}

// Account advances the simulated clock by dt seconds during which the
// package drew avgPowerW watts. The omp runtime calls this once per region
// (and per overhead interval).
func (m *Machine) Account(dt, avgPowerW float64) {
	if dt < 0 {
		return
	}
	m.clockS += dt
	m.energyJ += dt * avgPowerW
}

// AccountDRAM adds DRAM energy: static DRAM power over dt plus the energy
// cost of the bytes actually transferred (the §VII future-work memory-power
// accounting; the paper could neither cap nor bill DRAM).
func (m *Machine) AccountDRAM(dt, bytes float64) {
	if dt < 0 {
		return
	}
	m.dramJ += dt*m.arch.DRAMStaticW + bytes*m.arch.DRAMEnergyPerByte
}

// Now returns the simulated wall clock in seconds.
func (m *Machine) Now() float64 { return m.clockS }

// EnergyJ returns the accumulated package energy in joules since creation.
func (m *Machine) EnergyJ() float64 { return m.energyJ }

// DRAMEnergyJ returns the accumulated DRAM energy in joules.
func (m *Machine) DRAMEnergyJ() float64 { return m.dramJ }

// Reset zeroes the clock and energy accumulators, keeping the cap.
func (m *Machine) Reset() {
	m.clockS = 0
	m.energyJ = 0
	m.dramJ = 0
}

// IdlePowerW is the package draw when no region is executing (static only;
// idle cores are power-gated in this model).
func (m *Machine) IdlePowerW() float64 { return m.arch.StaticW }
