package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// ImbalanceKind enumerates the per-iteration cost patterns used to model the
// load-balancing behaviour the paper analyses (§V): well balanced kernels
// have Uniform weights; compute_rhs-style kernels have ramps or heavy
// blocks; irregular mesh work is modelled with seeded log-normal noise.
type ImbalanceKind int

const (
	// Uniform gives every iteration the same cost.
	Uniform ImbalanceKind = iota
	// Ramp grows cost linearly across the iteration space; Param is the
	// relative spread (1.0 means the last iteration costs 3x the first,
	// centred on mean 1).
	Ramp
	// Blocks makes Blocks contiguous stretches Param-times heavier than the
	// rest (boundary regions, refined zones).
	Blocks
	// Random draws log-normal multiplicative noise with sigma Param.
	Random
	// Sawtooth repeats a rising ramp Blocks times (periodic fronts).
	Sawtooth
)

// String implements fmt.Stringer.
func (k ImbalanceKind) String() string {
	switch k {
	case Uniform:
		return "uniform"
	case Ramp:
		return "ramp"
	case Blocks:
		return "blocks"
	case Random:
		return "random"
	case Sawtooth:
		return "sawtooth"
	default:
		return fmt.Sprintf("ImbalanceKind(%d)", int(k))
	}
}

// Imbalance specifies the iteration-cost pattern of a loop.
type Imbalance struct {
	Kind   ImbalanceKind
	Param  float64 // spread / factor / sigma, see ImbalanceKind
	Blocks int     // number of heavy blocks or sawtooth periods
	Seed   int64   // PRNG seed for Random (determinism)
}

// CacheSpec describes the memory behaviour of one loop in physical terms.
// The analytic miss-rate model in cache.go turns these into per-level miss
// rates as a function of (threads, chunk, frequency).
type CacheSpec struct {
	AccessesPerIter  float64 // memory references issued per iteration
	BytesPerIter     float64 // distinct bytes streamed per iteration
	StrideElems      int     // access stride in 8-byte elements (1 = unit)
	TemporalWindowKB float64 // per-thread re-reference window
	FootprintMB      float64 // total data touched per region invocation
	BoundaryLines    float64 // cache lines reloaded per chunk boundary
	PassesPerChunk   float64 // data re-traversals inside one chunk (>=1)
	L3Contention     float64 // 0..1 inter-thread L3 competition strength
	MLP              float64 // memory-level parallelism (latency overlap)
}

// normalized returns a copy with defaulted fields filled in so the cache
// model never divides by zero.
func (c CacheSpec) normalized() CacheSpec {
	if c.StrideElems < 1 {
		c.StrideElems = 1
	}
	if c.PassesPerChunk < 1 {
		c.PassesPerChunk = 1
	}
	if c.MLP < 1 {
		c.MLP = 1
	}
	if c.AccessesPerIter < 0 {
		c.AccessesPerIter = 0
	}
	return c
}

// LoopModel is the simulator's description of one OpenMP parallel region:
// an iteration space with compute cost, an imbalance pattern, a memory
// profile, and an optional master-only serial section (which shows up as
// OMP_BARRIER time for the other team members, as in the paper's LULESH
// EvalEOSForElems analysis, Fig. 9).
type LoopModel struct {
	Name          string
	Iters         int
	CompNSPerIter float64 // compute nanoseconds per mean-weight iteration at base frequency
	SerialNS      float64 // master-only nanoseconds per region invocation
	Imbalance     Imbalance
	Mem           CacheSpec

	weightsOnce sync.Once // guards the lazy build (models are shared across harness goroutines)
	weights     []float64 // lazily built, mean 1
	prefix      []float64 // prefix[i] = sum(weights[:i]); len Iters+1
}

// uniform reports whether every iteration carries weight exactly 1, i.e.
// the weight vector is the constant 1 and never needs materialising. The
// executor's closed-form dispatch fast paths key off this: for uniform
// loops WeightSum(lo, hi) is simply hi-lo, saving O(Iters) memory and the
// prefix-sum build per region.
func (lm *LoopModel) uniform() bool {
	switch lm.Imbalance.Kind {
	case Ramp, Blocks, Random, Sawtooth:
		return false
	}
	// Uniform and unknown kinds both produce the constant-1 vector (see
	// buildWeights' default branch).
	return true
}

// Validate reports whether the model is usable.
func (lm *LoopModel) Validate() error {
	if lm.Iters <= 0 {
		return fmt.Errorf("sim: loop %q: non-positive iteration count %d", lm.Name, lm.Iters)
	}
	if lm.CompNSPerIter < 0 || lm.SerialNS < 0 {
		return fmt.Errorf("sim: loop %q: negative cost", lm.Name)
	}
	m := lm.Mem
	if m.AccessesPerIter < 0 || m.BytesPerIter < 0 || m.TemporalWindowKB < 0 ||
		m.FootprintMB < 0 || m.BoundaryLines < 0 {
		return fmt.Errorf("sim: loop %q: negative memory profile field", lm.Name)
	}
	if m.L3Contention < 0 || m.L3Contention > 1 {
		return fmt.Errorf("sim: loop %q: L3Contention %g outside [0, 1]", lm.Name, m.L3Contention)
	}
	return nil
}

// buildWeights materialises the per-iteration weight vector and its prefix
// sums. Weights are normalised to mean exactly 1 so that total work is
// independent of the imbalance pattern. The build is guarded by a sync.Once
// because LoopModels are shared read-mostly across harness goroutines.
func (lm *LoopModel) buildWeights() {
	lm.weightsOnce.Do(lm.materializeWeights)
}

func (lm *LoopModel) materializeWeights() {
	n := lm.Iters
	w := make([]float64, n)
	im := lm.Imbalance
	switch im.Kind {
	case Uniform:
		for i := range w {
			w[i] = 1
		}
	case Ramp:
		spread := im.Param
		for i := range w {
			x := 0.0
			if n > 1 {
				x = float64(i)/float64(n-1) - 0.5
			}
			w[i] = 1 + spread*x
			if w[i] < 0.05 {
				w[i] = 0.05
			}
		}
	case Blocks:
		nb := im.Blocks
		if nb <= 0 {
			nb = 1
		}
		factor := im.Param
		if factor < 1 {
			factor = 1
		}
		for i := range w {
			w[i] = 1
		}
		blockLen := n / (nb * 4)
		if blockLen < 1 {
			blockLen = 1
		}
		for b := 0; b < nb; b++ {
			start := (b*2 + 1) * n / (nb * 2)
			for j := 0; j < blockLen && start+j < n; j++ {
				w[start+j] = factor
			}
		}
	case Random:
		rng := rand.New(rand.NewSource(im.Seed))
		sigma := im.Param
		for i := range w {
			w[i] = math.Exp(rng.NormFloat64()*sigma - sigma*sigma/2)
		}
	case Sawtooth:
		periods := im.Blocks
		if periods <= 0 {
			periods = 4
		}
		spread := im.Param
		per := n / periods
		if per < 1 {
			per = 1
		}
		for i := range w {
			phase := float64(i%per) / float64(per)
			w[i] = 1 + spread*(phase-0.5)
			if w[i] < 0.05 {
				w[i] = 0.05
			}
		}
	default:
		for i := range w {
			w[i] = 1
		}
	}
	// Normalise to mean 1.
	var sum float64
	for _, x := range w {
		sum += x
	}
	mean := sum / float64(n)
	inv := 1 / mean
	pre := make([]float64, n+1)
	for i := range w {
		w[i] *= inv
		pre[i+1] = pre[i] + w[i]
	}
	lm.weights = w
	lm.prefix = pre
}

// WeightSum returns the sum of iteration weights in [lo, hi) in O(1) after
// the first call (prefix sums). The executor uses it to cost chunks. For
// uniform loops the sum is hi-lo by construction and no weight vector is
// ever built (exactly equivalent: uniform weights normalise to 1.0 and the
// prefix sums are exact small integers).
func (lm *LoopModel) WeightSum(lo, hi int) float64 {
	if lo < 0 {
		lo = 0
	}
	if hi > lm.Iters {
		hi = lm.Iters
	}
	if lo >= hi {
		return 0
	}
	if lm.uniform() {
		return float64(hi - lo)
	}
	lm.buildWeights()
	return lm.prefix[hi] - lm.prefix[lo]
}

// Weights returns the (normalised) weight vector, building it if needed.
// The returned slice must not be modified.
func (lm *LoopModel) Weights() []float64 {
	lm.buildWeights()
	return lm.weights
}

// TotalWork returns the total compute nanoseconds of one invocation at base
// frequency on one thread (excluding the serial section).
func (lm *LoopModel) TotalWork() float64 {
	return float64(lm.Iters) * lm.CompNSPerIter
}

// ImbalanceRatio returns max weight / mean weight, a scalar measure of how
// imbalanced the loop is (1 = perfectly balanced).
func (lm *LoopModel) ImbalanceRatio() float64 {
	if lm.uniform() {
		return 1
	}
	lm.buildWeights()
	m := 0.0
	for _, w := range lm.weights {
		if w > m {
			m = w
		}
	}
	return m
}
