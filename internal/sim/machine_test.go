package sim

import (
	"math"
	"testing"
)

func newCrill(t *testing.T) *Machine {
	t.Helper()
	m, err := NewMachine(Crill())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSetPowerCap(t *testing.T) {
	m := newCrill(t)
	if m.PowerCap() != 115 {
		t.Errorf("uncapped PowerCap = %g, want TDP 115", m.PowerCap())
	}
	if m.Capped() {
		t.Errorf("fresh machine should be uncapped")
	}
	if err := m.SetPowerCap(70); err != nil {
		t.Fatal(err)
	}
	if m.PowerCap() != 70 || !m.Capped() {
		t.Errorf("cap not applied")
	}
	if err := m.SetPowerCap(0); err != nil {
		t.Fatal(err)
	}
	if m.Capped() {
		t.Errorf("cap 0 should remove the limit")
	}
	if err := m.SetPowerCap(-5); err == nil {
		t.Errorf("negative cap should error")
	}
	// Limits above TDP clamp, like RAPL.
	if err := m.SetPowerCap(500); err != nil {
		t.Fatal(err)
	}
	if m.PowerCap() != 115 {
		t.Errorf("cap above TDP should clamp to TDP, got %g", m.PowerCap())
	}
}

func TestMinotaurCannotCap(t *testing.T) {
	m, err := NewMachine(Minotaur())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetPowerCap(200); err == nil {
		t.Errorf("Minotaur capping should be rejected (no privilege)")
	}
	if err := m.SetPowerCap(0); err != nil {
		t.Errorf("removing a cap is always allowed: %v", err)
	}
}

func TestFreqAtCubicLaw(t *testing.T) {
	m := newCrill(t)
	a := m.Arch()
	if err := m.SetPowerCap(55); err != nil {
		t.Fatal(err)
	}
	f16, _ := m.FreqAt(16)
	// budget = 55-32 = 23 W over 16 cores = 1.4375 W/core; ratio vs
	// 5.1875 W -> f = 2.4 * cbrt(0.27711) = 1.565 GHz.
	want := a.BaseGHz * math.Cbrt((55.0-32.0)/16.0/a.DynCoreW)
	if math.Abs(f16-want) > 1e-9 {
		t.Errorf("FreqAt(16)@55W = %v, want %v", f16, want)
	}

	// Fewer active cores get more budget each, hence higher frequency —
	// the mechanism behind reduced thread counts under caps (Fig. 1).
	f8, _ := m.FreqAt(8)
	if f8 <= f16 {
		t.Errorf("8 active cores should clock higher than 16 under a cap: %v vs %v", f8, f16)
	}
	f4, _ := m.FreqAt(4)
	if f4 < f8 {
		t.Errorf("frequency must be non-increasing in active cores: f4=%v f8=%v", f4, f8)
	}
	// With few enough cores the cap stops binding.
	f1, duty := m.FreqAt(1)
	if f1 != a.BaseGHz || duty != 1 {
		t.Errorf("single core under 55W should hit base frequency, got %v (duty %v)", f1, duty)
	}
}

func TestFreqAtDutyCycling(t *testing.T) {
	m := newCrill(t)
	if err := m.SetPowerCap(40); err != nil { // 8W dynamic budget over 16 cores
		t.Fatal(err)
	}
	f, duty := m.FreqAt(16)
	if f != m.Arch().MinGHz {
		t.Errorf("starved cores should pin MinGHz, got %v", f)
	}
	if duty >= 1 || duty < 0.05 {
		t.Errorf("duty = %v, want in [0.05, 1)", duty)
	}
}

func TestFreqMonotoneInCap(t *testing.T) {
	m := newCrill(t)
	prev := 0.0
	for _, cap := range []float64{45, 55, 70, 85, 100, 115} {
		if err := m.SetPowerCap(cap); err != nil {
			t.Fatal(err)
		}
		f, duty := m.FreqAt(16)
		eff := f * duty
		if eff < prev {
			t.Errorf("effective frequency must not decrease with cap: %gW -> %v after %v", cap, eff, prev)
		}
		prev = eff
	}
}

func TestAccountAndReset(t *testing.T) {
	m := newCrill(t)
	m.Account(2.0, 50)
	m.Account(1.0, 100)
	if m.Now() != 3.0 {
		t.Errorf("Now = %v, want 3", m.Now())
	}
	if m.EnergyJ() != 200 {
		t.Errorf("EnergyJ = %v, want 200", m.EnergyJ())
	}
	m.Account(-1, 10) // negative durations ignored
	if m.Now() != 3.0 {
		t.Errorf("negative dt must be ignored")
	}
	m.Reset()
	if m.Now() != 0 || m.EnergyJ() != 0 {
		t.Errorf("Reset did not clear")
	}
}

func TestCorePower(t *testing.T) {
	m := newCrill(t)
	a := m.Arch()
	if got := m.CorePowerAt(a.BaseGHz, 1); math.Abs(got-a.DynCoreW) > 1e-12 {
		t.Errorf("core power at base = %v, want %v", got, a.DynCoreW)
	}
	half := m.CorePowerAt(a.BaseGHz/2, 1)
	if math.Abs(half-a.DynCoreW/8) > 1e-12 {
		t.Errorf("cubic law: half frequency should be 1/8 power, got %v", half)
	}
}

func TestAccountOverhead(t *testing.T) {
	m := newCrill(t)
	m.AccountOverhead(0.001)
	if m.Now() != 0.001 {
		t.Errorf("overhead must advance the clock")
	}
	if m.EnergyJ() <= 0.001*m.Arch().StaticW*0.99 {
		t.Errorf("overhead energy must include at least static power")
	}
	before := m.Now()
	m.AccountOverhead(0)
	m.AccountOverhead(-1)
	if m.Now() != before {
		t.Errorf("zero/negative overhead must be a no-op")
	}
}
